"""Tests for execution tracing and its renderings."""

import pytest

from repro.core.params import SkeletonParams
from repro.core.searchtypes import Enumeration, Optimisation
from repro.core.tasks import DEPTH, STACK
from repro.runtime.executor import SimulatedCluster
from repro.runtime.topology import Topology
from repro.runtime.trace import Trace, render_gantt, utilisation_timeline

from tests.conftest import make_toy_spec


def wide_spec(width=5, depth=3):
    children = {}
    values = {"root": 1}

    def grow(name, d):
        if d == depth:
            return
        kids = [f"{name}/{i}" for i in range(width)]
        children[name] = kids
        for k in kids:
            values[k] = 1
            grow(k, d + 1)

    grow("root", 0)
    return make_toy_spec(children, values, with_bound=False)


def traced_run(policy=DEPTH, params=None, stype=None, spec=None):
    cluster = SimulatedCluster(Topology(2, 3), trace=True)
    return cluster.run(
        spec if spec is not None else wide_spec(),
        stype if stype is not None else Enumeration(),
        policy,
        params if params is not None else SkeletonParams(d_cutoff=1),
    )


class TestTraceCollection:
    def test_trace_attached_when_enabled(self):
        res = traced_run()
        assert res.trace is not None
        assert res.trace.makespan == res.virtual_time

    def test_trace_absent_by_default(self):
        cluster = SimulatedCluster(Topology(1, 2))
        res = cluster.run(wide_spec(), Enumeration(), DEPTH, SkeletonParams(d_cutoff=1))
        assert res.trace is None

    def test_intervals_cover_all_nodes(self):
        res = traced_run()
        assert sum(i.nodes for i in res.trace.intervals) == res.metrics.nodes

    def test_intervals_within_makespan(self):
        res = traced_run()
        for i in res.trace.intervals:
            assert 0.0 <= i.start <= i.end
            assert i.end <= res.trace.makespan + 1e-9

    def test_busy_time_close_to_reported(self):
        res = traced_run()
        for w in range(res.workers):
            # trace intervals include scheduling/idle-free execution only,
            # so they can't exceed the worker's accounted busy time by
            # more than scheduling costs
            assert res.trace.busy_time(w) <= res.virtual_time + 1e-9

    def test_stack_policy_traced(self):
        res = traced_run(policy=STACK, params=SkeletonParams(chunked=True))
        assert sum(i.nodes for i in res.trace.intervals) == res.metrics.nodes

    def test_improvements_recorded_for_optimisation(self, toy_spec):
        res = traced_run(spec=toy_spec, stype=Optimisation(),
                         params=SkeletonParams(d_cutoff=1))
        assert res.trace.improvements
        times = [t for t, _ in res.trace.improvements]
        assert all(0 <= t <= res.trace.makespan for t in times)
        values = [v for _, v in res.trace.improvements]
        assert max(values) == res.value

    def test_ramp_up_time(self):
        # d_cutoff=2 spawns 30 tasks: plenty for all 6 workers.
        res = traced_run(params=SkeletonParams(d_cutoff=2))
        ramp = res.trace.ramp_up_time()
        assert ramp is not None
        assert 0 < ramp <= res.trace.makespan

    def test_ramp_up_none_when_starved(self):
        # Only 5 depth-1 tasks for 6 workers: someone never works.
        res = traced_run(params=SkeletonParams(d_cutoff=1))
        assert res.trace.ramp_up_time() is None


class TestTraceValidation:
    def test_backwards_interval_rejected(self):
        t = Trace(workers=1)
        with pytest.raises(ValueError):
            t.record_interval(0, 5.0, 4.0, nodes=1)

    def test_negative_worker_count_rejected(self):
        with pytest.raises(ValueError):
            Trace(workers=-1)

    def test_out_of_range_worker_rejected(self):
        t = Trace(workers=2)
        with pytest.raises(ValueError):
            t.record_interval(2, 0.0, 1.0, nodes=1)
        with pytest.raises(ValueError):
            t.record_interval(-1, 0.0, 1.0, nodes=1)

    def test_zero_worker_trace_records_nothing(self):
        t = Trace(workers=0)
        with pytest.raises(ValueError):
            t.record_interval(0, 0.0, 1.0, nodes=1)


class TestPerWorkerIndex:
    def test_busy_time_and_tasks_of_agree_with_scan(self):
        t = Trace(workers=3)
        t.record_interval(0, 0.0, 1.0, nodes=2)
        t.record_interval(1, 0.5, 2.5, nodes=3)
        t.record_interval(0, 2.0, 3.5, nodes=1)
        assert t.busy_time(0) == pytest.approx(2.5)
        assert t.busy_time(1) == pytest.approx(2.0)
        assert t.busy_time(2) == 0.0
        assert [i.start for i in t.tasks_of(0)] == [0.0, 2.0]
        assert t.tasks_of(2) == []

    def test_index_follows_direct_interval_appends(self):
        # `intervals` is public; appending to it directly must still be
        # visible through the per-worker queries.
        from repro.runtime.trace import TaskInterval

        t = Trace(workers=2)
        t.record_interval(0, 0.0, 1.0, nodes=1)
        assert t.busy_time(0) == pytest.approx(1.0)  # index built
        t.intervals.append(TaskInterval(1, 1.0, 4.0, nodes=5))
        assert t.busy_time(1) == pytest.approx(3.0)
        t.intervals.clear()
        assert t.busy_time(0) == 0.0
        assert t.tasks_of(1) == []

    def test_tasks_of_sorted_even_when_recorded_out_of_order(self):
        t = Trace(workers=1)
        t.record_interval(0, 5.0, 6.0, nodes=1)
        t.record_interval(0, 1.0, 2.0, nodes=1)
        assert [i.start for i in t.tasks_of(0)] == [1.0, 5.0]


class TestRenderings:
    def test_utilisation_timeline_bounds(self):
        res = traced_run()
        util = utilisation_timeline(res.trace, buckets=10)
        assert len(util) == 10
        assert all(0.0 <= u <= 1.0 for u in util)
        assert max(util) > 0.0

    def test_utilisation_empty_trace(self):
        t = Trace(workers=2)
        assert utilisation_timeline(t, buckets=5) == [0.0] * 5

    def test_utilisation_bad_buckets(self):
        with pytest.raises(ValueError):
            utilisation_timeline(Trace(workers=1), buckets=0)

    def test_utilisation_zero_workers_no_division_error(self):
        # Regression: a zero-worker trace with a positive makespan used
        # to divide by zero computing capacity.
        t = Trace(workers=0, makespan=10.0)
        assert utilisation_timeline(t, buckets=4) == [0.0] * 4

    def test_gantt_narrow_width_footer(self):
        # Regression: width < 12 repeated the ruler dash a negative
        # number of times, misaligning the footer.
        t = Trace(workers=1, makespan=4.0)
        t.record_interval(0, 0.0, 4.0, nodes=2)
        art = render_gantt(t, width=8)
        footer = art.splitlines()[-1]
        assert footer.strip().startswith("0")
        assert "--" not in footer  # no ruler dashes at this width
        assert "4" in footer

    def test_gantt_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            render_gantt(Trace(workers=1, makespan=1.0), width=0)

    def test_gantt_renders_rows(self):
        res = traced_run()
        art = render_gantt(res.trace, width=40)
        lines = art.splitlines()
        assert lines[0].startswith("w0  |")
        assert any("#" in line for line in lines)
        assert any(line.startswith("util|") for line in lines)

    def test_gantt_empty(self):
        assert render_gantt(Trace(workers=1)) == "(empty trace)"

    def test_gantt_truncates_many_workers(self):
        cluster = SimulatedCluster(Topology(4, 15), trace=True)
        res = cluster.run(wide_spec(width=6, depth=3), Enumeration(), DEPTH,
                          SkeletonParams(d_cutoff=2))
        art = render_gantt(res.trace, width=30, max_workers=8)
        assert "more workers" in art
