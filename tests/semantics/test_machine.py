"""Unit tests for the abstract machine's reduction rules (paper §3.3–3.6)."""

import pytest

from repro.semantics.machine import (
    DECISION,
    ENUMERATION,
    OPTIMISATION,
    Configuration,
    Machine,
    SearchProblem,
    ThreadState,
)
from repro.semantics.monoids import BoundedMaxMonoid, MaxMonoid, SumMonoid
from repro.semantics.tree import OrderedTree
from repro.semantics.words import EPSILON


def binary_tree(depth=2):
    def g(w):
        return "ab" if len(w) < depth else ""

    from repro.semantics.generators import tree_of_generator

    return tree_of_generator(g)


def count_problem():
    return SearchProblem(ENUMERATION, SumMonoid(), lambda w: 1)


def depth_problem():
    return SearchProblem(OPTIMISATION, MaxMonoid(), lambda w: len(w))


class TestSearchProblemValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SearchProblem("minimisation", SumMonoid(), lambda w: 1)

    def test_enumeration_with_pruning_rejected(self):
        with pytest.raises(ValueError):
            SearchProblem(
                ENUMERATION, SumMonoid(), lambda w: 1, prunes=lambda u, v: False
            )

    def test_decision_needs_bounded_monoid(self):
        with pytest.raises(ValueError):
            SearchProblem(DECISION, MaxMonoid(), lambda w: len(w))


class TestConfiguration:
    def test_initial_enumeration(self):
        cfg = Configuration.initial(count_problem(), binary_tree(), 2)
        assert cfg.knowledge == 0
        assert len(cfg.tasks) == 1
        assert cfg.threads == [None, None]

    def test_initial_optimisation_incumbent_is_root(self):
        cfg = Configuration.initial(depth_problem(), binary_tree(), 1)
        assert cfg.knowledge == EPSILON

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            Configuration.initial(count_problem(), binary_tree(), 0)

    def test_initial_not_final(self):
        cfg = Configuration.initial(count_problem(), binary_tree(), 1)
        assert not cfg.is_final()

    def test_live_nodes_of_initial_is_tree_size(self):
        tree = binary_tree()
        cfg = Configuration.initial(count_problem(), tree, 1)
        assert cfg.live_nodes() == len(tree)


class TestIndividualRules:
    def test_schedule_installs_task(self):
        m = Machine(count_problem(), spawn_policy=None)
        cfg = Configuration.initial(count_problem(), binary_tree(), 1)
        nxt = m._schedule(cfg, 0)
        assert nxt.threads[0].node == EPSILON
        assert not nxt.tasks

    def test_schedule_not_applicable_when_active(self):
        m = Machine(count_problem(), spawn_policy=None)
        cfg = Configuration.initial(count_problem(), binary_tree(), 1)
        cfg = m._schedule(cfg, 0)
        assert m._schedule(cfg, 0) is None

    def test_expand_moves_to_first_child(self):
        m = Machine(count_problem(), spawn_policy=None)
        cfg = Configuration.initial(count_problem(), binary_tree(), 1)
        cfg = m._schedule(cfg, 0)
        cfg = m._traverse(cfg, 0)
        assert cfg.threads[0].node == ("a",)
        assert cfg.threads[0].backtracks == 0

    def test_backtrack_increments_counter(self):
        m = Machine(count_problem(), spawn_policy=None)
        cfg = Configuration.initial(count_problem(), binary_tree(1), 1)
        cfg = m._schedule(cfg, 0)
        cfg = m._traverse(cfg, 0)  # expand to ("a",)
        cfg = m._traverse(cfg, 0)  # backtrack to ("b",)
        assert cfg.threads[0].node == ("b",)
        assert cfg.threads[0].backtracks == 1

    def test_terminate_idles_thread(self):
        tree = OrderedTree.from_nodes([EPSILON])
        m = Machine(count_problem(), spawn_policy=None)
        cfg = Configuration.initial(count_problem(), tree, 1)
        cfg = m._schedule(cfg, 0)
        cfg = m._traverse(cfg, 0)
        assert cfg.threads[0] is None

    def test_accumulate(self):
        m = Machine(count_problem(), spawn_policy=None)
        cfg = Configuration.initial(count_problem(), binary_tree(), 1)
        cfg = m._schedule(cfg, 0)
        cfg = m._process(cfg, 0)
        assert cfg.knowledge == 1

    def test_strengthen(self):
        m = Machine(depth_problem(), spawn_policy=None)
        cfg = Configuration.initial(depth_problem(), binary_tree(), 1)
        cfg = m._schedule(cfg, 0)
        cfg = m._traverse(cfg, 0)  # at ("a",), depth 1 > depth 0
        cfg = m._process(cfg, 0)
        assert cfg.knowledge == ("a",)

    def test_skip_keeps_incumbent(self):
        prob = depth_problem()
        m = Machine(prob, spawn_policy=None)
        cfg = Configuration.initial(prob, binary_tree(), 1)
        cfg = m._schedule(cfg, 0)
        cfg = m._process(cfg, 0)  # root: depth 0, not better than root
        assert cfg.knowledge == EPSILON

    def test_shortcircuit_clears_everything(self):
        prob = SearchProblem(DECISION, BoundedMaxMonoid(1), lambda w: min(len(w), 1))
        m = Machine(prob, spawn_policy=None)
        cfg = Configuration.initial(prob, binary_tree(), 2)
        cfg = m._schedule(cfg, 0)
        cfg = m._traverse(cfg, 0)
        cfg = m._process(cfg, 0)  # incumbent at depth 1 == greatest
        out = m._shortcircuit(cfg, 0)
        assert out.is_final()

    def test_prune_removes_subtree_keeps_node(self):
        prob = SearchProblem(
            OPTIMISATION,
            MaxMonoid(),
            lambda w: len(w),
            prunes=lambda u, v: v == ("a",),
        )
        m = Machine(prob, spawn_policy=None)
        cfg = Configuration.initial(prob, binary_tree(), 1)
        cfg = m._schedule(cfg, 0)
        cfg = m._traverse(cfg, 0)  # at ("a",)
        pruned = m._prune(cfg, 0)
        assert ("a",) in pruned.threads[0].task
        assert ("a", "a") not in pruned.threads[0].task

    def test_prune_without_doomed_nodes_not_applicable(self):
        prob = SearchProblem(
            OPTIMISATION,
            MaxMonoid(),
            lambda w: len(w),
            prunes=lambda u, v: True,
        )
        m = Machine(prob, spawn_policy=None)
        tree = OrderedTree.from_nodes([EPSILON])
        cfg = Configuration.initial(prob, tree, 1)
        cfg = m._schedule(cfg, 0)
        assert m._prune(cfg, 0) is None


class TestSpawnRules:
    def _active(self, problem, tree, machine):
        cfg = Configuration.initial(problem, tree, 1)
        return machine._schedule(cfg, 0)

    def test_spawn_any_moves_subtree_to_queue(self):
        m = Machine(count_problem(), spawn_policy="any", seed=1)
        cfg = self._active(count_problem(), binary_tree(), m)
        nxt = m._spawn(cfg, 0)
        assert len(nxt.tasks) == 1
        spawned = nxt.tasks[0]
        total = len(spawned) + len(nxt.threads[0].task)
        assert total == len(binary_tree())

    def test_spawn_depth_spawns_all_children(self):
        m = Machine(count_problem(), spawn_policy="depth", d_cutoff=1)
        cfg = self._active(count_problem(), binary_tree(), m)
        nxt = m._spawn(cfg, 0)
        assert len(nxt.tasks) == 2
        assert [t.root for t in nxt.tasks] == [("a",), ("b",)]

    def test_spawn_depth_respects_cutoff(self):
        m = Machine(count_problem(), spawn_policy="depth", d_cutoff=0)
        cfg = self._active(count_problem(), binary_tree(), m)
        assert m._spawn(cfg, 0) is None

    def test_spawn_budget_requires_backtracks(self):
        m = Machine(count_problem(), spawn_policy="budget", k_budget=5)
        cfg = self._active(count_problem(), binary_tree(), m)
        assert m._spawn(cfg, 0) is None

    def test_spawn_budget_spawns_lowest_and_resets(self):
        m = Machine(count_problem(), spawn_policy="budget", k_budget=0)
        cfg = self._active(count_problem(), binary_tree(), m)
        nxt = m._spawn(cfg, 0)
        assert [t.root for t in nxt.tasks] == [("a",), ("b",)]
        assert nxt.threads[0].backtracks == 0

    def test_spawn_stack_only_on_empty_queue(self):
        m = Machine(count_problem(), spawn_policy="stack")
        cfg = self._active(count_problem(), binary_tree(), m)
        nxt = m._spawn(cfg, 0)
        assert [t.root for t in nxt.tasks] == [("a",)]
        # queue now non-empty: rule no longer fires
        assert m._spawn(nxt, 0) is None

    def test_spawned_tasks_preserve_traversal_order(self):
        m = Machine(count_problem(), spawn_policy="depth", d_cutoff=1)
        tree = OrderedTree({EPSILON: [("c",), ("a",)]})
        cfg = self._active(count_problem(), tree, m)
        nxt = m._spawn(cfg, 0)
        assert [t.root for t in nxt.tasks] == [("c",), ("a",)]


class TestRun:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Machine(count_problem(), spawn_policy="wild")

    def test_sequential_run_counts(self):
        m = Machine(count_problem(), spawn_policy=None)
        assert m.search(binary_tree(3)) == 15

    def test_run_reaches_final_configuration(self):
        m = Machine(count_problem(), spawn_policy="any", seed=3)
        cfg = Configuration.initial(count_problem(), binary_tree(), 2)
        final = m.run(cfg)
        assert final.is_final()

    def test_max_steps_guard(self):
        m = Machine(count_problem(), spawn_policy=None)
        cfg = Configuration.initial(count_problem(), binary_tree(3), 1)
        with pytest.raises(RuntimeError):
            m.run(cfg, max_steps=3)

    def test_trace_records_steps(self):
        m = Machine(count_problem(), spawn_policy=None)
        m.search(binary_tree(1))
        assert m.trace[0] == "traverse@0"
