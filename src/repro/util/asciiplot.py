"""Terminal line charts for the benchmark harnesses.

Figure 4 is a plot, so its reproduction should look like one: a small
multi-series scatter/line renderer over a character grid, with optional
log-scaled y (runtimes spanning orders of magnitude) — enough to read
the scaling shape straight from the bench output without matplotlib.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, log: bool) -> float:
    """Normalise ``value`` into [0, 1] linearly or logarithmically."""
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0.5
    return (value - lo) / (hi - lo)


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    ylabel: str = "",
    xlabel: str = "",
    log_y: bool = False,
) -> str:
    """Render named (x, y) series onto a character grid.

    Each series gets a marker from ``oxx+*...``; points landing on the
    same cell show the later series' marker.  Returns the chart with a
    legend; raises on empty input or non-positive values under
    ``log_y``.
    """
    if not series or all(not pts for pts in series.values()):
        raise ValueError("nothing to plot")
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    if log_y and min(ys) <= 0:
        raise ValueError("log_y requires positive y values")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), _MARKERS):
        for x, y in pts:
            col = round(_scale(x, x_lo, x_hi, False) * (width - 1))
            row = round(_scale(y, y_lo, y_hi, log_y) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_top = f"{y_hi:g}"
    y_bot = f"{y_lo:g}"
    label_w = max(len(y_top), len(y_bot))
    for r, row in enumerate(grid):
        if r == 0:
            label = y_top.rjust(label_w)
        elif r == height - 1:
            label = y_bot.rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row)}|")
    lines.append(
        " " * label_w + f"  {x_lo:g}".ljust(width // 2) + f"{x_hi:g}".rjust(width // 2)
    )
    if xlabel or ylabel:
        lines.append(
            " " * label_w
            + f"  x: {xlabel}" * bool(xlabel)
            + f"   y: {ylabel}{' (log)' if log_y else ''}" * bool(ylabel)
        )
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)
