"""Tests for SearchResult/SearchMetrics JSON round-tripping."""

import json

import pytest

from repro.core.results import SearchMetrics, SearchResult, result_from_dict
from repro.core.sequential import sequential_search
from repro.core.searchtypes import Enumeration, Optimisation


def round_trip(result):
    return result_from_dict(json.loads(json.dumps(result.to_dict())))


class TestMetricsRoundTrip:
    def test_all_counters_survive(self):
        m = SearchMetrics(nodes=10, weighted_nodes=12, backtracks=3, prunes=2,
                          spawns=4, steals=1, failed_steals=1, broadcasts=5,
                          max_depth=7)
        assert SearchMetrics.from_dict(m.to_dict()) == m

    def test_unknown_keys_ignored(self):
        m = SearchMetrics.from_dict({"nodes": 3, "future_counter": 99})
        assert m.nodes == 3


class TestResultRoundTrip:
    def test_real_optimisation_result(self, toy_spec):
        res = sequential_search(toy_spec, Optimisation())
        back = round_trip(res)
        assert back.kind == res.kind
        assert back.value == res.value
        assert back.node == res.node
        assert back.metrics == res.metrics
        assert back.wall_time == res.wall_time
        assert back.workers == res.workers

    def test_real_enumeration_result(self, toy_spec):
        res = sequential_search(toy_spec, Enumeration())
        back = round_trip(res)
        assert back.value == res.value
        assert back.node is None

    def test_tuple_witness_survives_as_tuple(self):
        res = SearchResult(kind="optimisation", value=3,
                           node=(1, 2, ("nested", 3)))
        back = round_trip(res)
        assert back.node == (1, 2, ("nested", 3))
        assert isinstance(back.node, tuple)
        assert isinstance(back.node[2], tuple)

    def test_frozenset_witness_becomes_sorted_tuple(self):
        res = SearchResult(kind="optimisation", value=3,
                           node=frozenset({3, 1, 2}))
        back = round_trip(res)
        assert back.node == (1, 2, 3)

    def test_arbitrary_witness_degrades_to_repr(self):
        class Weird:
            def __repr__(self):
                return "<weird witness>"

        res = SearchResult(kind="optimisation", value=1, node=Weird())
        back = round_trip(res)
        assert back.node == "<weird witness>"

    def test_decision_found_flag_survives(self):
        res = SearchResult(kind="decision", value=5, node=("w",), found=True)
        assert round_trip(res).found is True

    def test_per_worker_busy_kept_trace_dropped(self):
        res = SearchResult(kind="enumeration", value=7, virtual_time=4.2,
                           per_worker_busy=[1.0, 2.0], workers=2,
                           trace=object())
        back = round_trip(res)
        assert back.per_worker_busy == [1.0, 2.0]
        assert back.virtual_time == pytest.approx(4.2)
        assert back.trace is None

    def test_efficiency_preserved_through_round_trip(self):
        res = SearchResult(kind="enumeration", value=7, virtual_time=4.0,
                           per_worker_busy=[2.0, 2.0], workers=2)
        assert round_trip(res).efficiency() == res.efficiency()
