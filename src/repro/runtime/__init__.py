"""Simulated distributed execution substrate (the HPX substitute).

The paper runs skeletons over HPX on a 17-node Beowulf cluster.  Python
cannot express 255-way fine-grained tree search (the GIL serialises it),
so this package provides a **deterministic discrete-event simulation** of
the same architecture: localities holding workers, per-locality
order-preserving workpools, steal channels with latency, and delayed
incumbent broadcast.  The simulated workers drive the *identical*
:class:`repro.core.tasks.SearchTask` state machines a real worker would,
one step per time quantum, so coordination behaviour — load balance,
starvation, pruning timing, anomalies — is reproduced faithfully under
an explicit cost model.

See DESIGN.md §2 for the substitution argument.
"""

from repro.runtime.topology import Topology
from repro.runtime.costmodel import CostModel
from repro.runtime.sim import Simulator
from repro.runtime.workpool import Workpool
from repro.runtime.knowledge import KnowledgeManager
from repro.runtime.executor import SimulatedCluster, virtual_sequential_time
from repro.runtime.processes import multiprocessing_depthbounded_search
from repro.runtime.threads import threaded_depthbounded_search
from repro.runtime.trace import Trace, render_gantt, utilisation_timeline

__all__ = [
    "Topology",
    "CostModel",
    "Simulator",
    "Workpool",
    "KnowledgeManager",
    "SimulatedCluster",
    "virtual_sequential_time",
    "threaded_depthbounded_search",
    "multiprocessing_depthbounded_search",
    "Trace",
    "render_gantt",
    "utilisation_timeline",
]
