"""Framework tests: suppressions, fingerprints, hygiene, report schema."""

from __future__ import annotations

import pytest

from repro.analysis.core import run_analysis
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import all_rules, resolve_rules
from repro.analysis.rules.lock_discipline import LockDisciplineRule

RACY = """\
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # guarded-by: _lock

    def bump(self):
        self.n += 1
"""


class TestSuppressions:
    def test_trailing_suppression_silences_finding(self, project_from):
        project = project_from(
            {
                "racy.py": RACY.replace(
                    "        self.n += 1",
                    "        self.n += 1"
                    "  # repro: allow[lock-discipline] -- test fixture",
                )
            }
        )
        report = run_analysis(project, [LockDisciplineRule()])
        assert report.errors == 0
        assert report.suppressed == 1

    def test_own_line_suppression_covers_next_line(self, project_from):
        project = project_from(
            {
                "racy.py": RACY.replace(
                    "        self.n += 1",
                    "        # repro: allow[lock-discipline] -- fixture\n"
                    "        self.n += 1",
                )
            }
        )
        report = run_analysis(project, [LockDisciplineRule()])
        assert report.errors == 0
        assert report.suppressed == 1

    def test_wildcard_rule_list(self, project_from):
        project = project_from(
            {
                "racy.py": RACY.replace(
                    "        self.n += 1",
                    "        self.n += 1  # repro: allow[*] -- fixture",
                )
            }
        )
        report = run_analysis(project, [LockDisciplineRule()])
        assert report.errors == 0

    def test_unrelated_rule_does_not_suppress(self, project_from):
        project = project_from(
            {
                "racy.py": RACY.replace(
                    "        self.n += 1",
                    "        self.n += 1"
                    "  # repro: allow[async-blocking] -- wrong rule",
                )
            }
        )
        report = run_analysis(
            project,
            [LockDisciplineRule()],
            check_suppression_hygiene=False,
        )
        assert report.errors == 1


class TestSuppressionHygiene:
    def test_missing_reason_is_an_error(self, project_from):
        project = project_from(
            {
                "racy.py": RACY.replace(
                    "        self.n += 1",
                    "        self.n += 1  # repro: allow[lock-discipline]",
                )
            }
        )
        report = run_analysis(project, all_rules())
        hygiene = [
            f for f in report.findings if f.rule == "suppression-hygiene"
        ]
        assert len(hygiene) == 1
        assert hygiene[0].severity == Severity.ERROR
        assert "reason" in hygiene[0].message

    def test_unused_suppression_is_a_warning(self, project_from):
        project = project_from(
            {
                "clean.py": (
                    "x = 1  # repro: allow[lock-discipline] -- stale\n"
                )
            }
        )
        report = run_analysis(project, all_rules())
        hygiene = [
            f for f in report.findings if f.rule == "suppression-hygiene"
        ]
        assert len(hygiene) == 1
        assert hygiene[0].severity == Severity.WARNING
        assert report.errors == 0

    def test_hygiene_skipped_on_rule_subset(self, project_from):
        project = project_from(
            {
                "clean.py": (
                    "x = 1  # repro: allow[lock-discipline] -- stale\n"
                )
            }
        )
        report = run_analysis(
            project,
            [LockDisciplineRule()],
            check_suppression_hygiene=False,
        )
        assert report.findings == []


class TestSyntaxErrors:
    def test_unparsable_file_yields_finding(self, project_from):
        project = project_from({"broken.py": "def f(:\n    pass\n"})
        report = run_analysis(project, all_rules())
        assert report.errors == 1
        assert report.findings[0].rule == "syntax-error"


class TestFindings:
    def test_fingerprint_ignores_line_drift(self):
        a = Finding(
            path="a.py", line=10, col=0, rule="r", message="m", symbol="C.f"
        )
        b = Finding(
            path="a.py", line=99, col=4, rule="r", message="m", symbol="C.f"
        )
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_distinguishes_rule_and_path(self):
        a = Finding(path="a.py", line=1, col=0, rule="r1", message="m")
        b = Finding(path="a.py", line=1, col=0, rule="r2", message="m")
        c = Finding(path="b.py", line=1, col=0, rule="r1", message="m")
        assert len({a.fingerprint, b.fingerprint, c.fingerprint}) == 3

    def test_render_mentions_position_and_rule(self):
        f = Finding(
            path="x.py", line=3, col=7, rule="demo", message="boom",
            symbol="C.m",
        )
        assert f.render() == "x.py:3:7: error demo: boom [in C.m]"


class TestReportSchema:
    def test_to_dict_shape_is_stable(self, project_from):
        project = project_from({"racy.py": RACY})
        report = run_analysis(project, all_rules())
        data = report.to_dict()
        assert data["version"] == 1
        assert sorted(data) == ["findings", "rules", "summary", "version"]
        assert sorted(data["summary"]) == [
            "baselined", "errors", "files", "suppressed", "warnings",
        ]
        assert data["summary"]["errors"] == report.errors == 1
        (finding,) = [
            f for f in data["findings"] if f["rule"] == "lock-discipline"
        ]
        assert sorted(finding) == [
            "col", "fingerprint", "line", "message", "path", "rule",
            "severity", "symbol",
        ]


class TestRuleRegistry:
    def test_all_rules_returns_fresh_instances(self):
        assert {r.name for r in all_rules()} == {
            "lock-discipline",
            "async-blocking",
            "protocol-exhaustiveness",
            "factory-imports",
            "thread-call-safety",
        }
        assert all_rules()[0] is not all_rules()[0]

    def test_resolve_rules_subset_and_unknown(self):
        (rule,) = resolve_rules(["lock-discipline"])
        assert rule.name == "lock-discipline"
        with pytest.raises(ValueError, match="unknown rule"):
            resolve_rules(["no-such-rule"])
