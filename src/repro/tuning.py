"""Skeleton and parameter selection by simulated sweep (§5.5 tooling).

The paper's §5.5 shows that no skeleton wins everywhere and that bad
parameters are catastrophic (0.89x vs 91.7x for the same skeleton), and
concludes that a skeleton library's value is making alternatives cheap
to try.  This module operationalises that: :func:`tune` runs a
configurable sweep of (skeleton, parameter) combinations on the
deterministic simulator and reports the ranking, so a user can pick a
coordination for *their* workload before committing to a long run.

Because the simulator is deterministic and virtual-time-based, a tuning
sweep is itself reproducible — the knob landscape, not measurement
noise, is what the report shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.params import SkeletonParams
from repro.core.searchtypes import SearchType
from repro.core.skeletons import COORDINATIONS, make_skeleton
from repro.core.space import SearchSpec
from repro.runtime.costmodel import CostModel
from repro.runtime.executor import SimulatedCluster, virtual_sequential_time
from repro.runtime.topology import Topology

__all__ = ["TuningResult", "TuningReport", "tune"]

@dataclass(frozen=True)
class TuningResult:
    """One sweep point: a skeleton, its knob setting, and the outcome."""

    skeleton: str
    knob: str  # human-readable, e.g. "d_cutoff=2"
    params: SkeletonParams
    speedup: float
    nodes: int
    efficiency: Optional[float]


@dataclass
class TuningReport:
    """Ranked outcomes of a tuning sweep."""

    instance: str
    workers: int
    sequential_time: float
    results: list[TuningResult] = field(default_factory=list)

    @property
    def best(self) -> TuningResult:
        if not self.results:
            raise ValueError("empty tuning report")
        return max(self.results, key=lambda r: r.speedup)

    def best_for(self, skeleton: str) -> TuningResult:
        """The best sweep point of one skeleton."""
        candidates = [r for r in self.results if r.skeleton == skeleton]
        if not candidates:
            raise ValueError(f"no sweep points for skeleton {skeleton!r}")
        return max(candidates, key=lambda r: r.speedup)

    def ranked(self) -> list[TuningResult]:
        """All sweep points, best speedup first."""
        return sorted(self.results, key=lambda r: -r.speedup)

    def render(self) -> str:
        """Human-readable ranking table with a recommendation line."""
        lines = [
            f"tuning report for {self.instance!r} on {self.workers} workers "
            f"(sequential vtime {self.sequential_time:.0f})",
            f"{'skeleton':>14}  {'knob':>22}  {'speedup':>8}  {'nodes':>9}  {'eff':>5}",
        ]
        for r in self.ranked():
            eff = f"{r.efficiency:.0%}" if r.efficiency is not None else "-"
            lines.append(
                f"{r.skeleton:>14}  {r.knob:>22}  {r.speedup:>7.1f}x  {r.nodes:>9}  {eff:>5}"
            )
        b = self.best
        lines.append(f"recommendation: {b.skeleton} ({b.knob}), {b.speedup:.1f}x")
        return "\n".join(lines)


def _sweep_points(
    skeletons: Sequence[str],
    d_cutoffs: Sequence[int],
    budgets: Sequence[int],
    spawn_probabilities: Sequence[float],
):
    for skeleton in skeletons:
        if skeleton in ("depthbounded", "ordered"):
            for d in d_cutoffs:
                yield skeleton, f"d_cutoff={d}", {"d_cutoff": d}
        elif skeleton == "budget":
            for b in budgets:
                yield skeleton, f"budget={b}", {"budget": b}
        elif skeleton == "stacksteal":
            for chunked in (True, False):
                yield skeleton, f"chunked={chunked}", {"chunked": chunked}
        elif skeleton == "random":
            for p in spawn_probabilities:
                yield skeleton, f"spawn_probability={p}", {"spawn_probability": p}
        else:
            raise ValueError(f"cannot tune skeleton {skeleton!r}")


def tune(
    spec: SearchSpec,
    stype: SearchType,
    *,
    localities: int = 1,
    workers_per_locality: int = 15,
    skeletons: Sequence[str] = ("depthbounded", "stacksteal", "budget"),
    d_cutoffs: Sequence[int] = (1, 2, 3, 4),
    budgets: Sequence[int] = (20, 100, 500, 2000),
    spawn_probabilities: Sequence[float] = (0.01, 0.05, 0.2),
    cost: Optional[CostModel] = None,
    seed: int = 0,
) -> TuningReport:
    """Sweep (skeleton, knob) combinations; return the ranked report.

    The baseline is the Sequential skeleton's virtual time under the
    same cost model, so ``speedup`` matches the paper's Table 2 metric.
    """
    for skeleton in skeletons:
        if skeleton not in COORDINATIONS or skeleton == "sequential":
            raise ValueError(f"cannot tune skeleton {skeleton!r}")
    seq_time, _ = virtual_sequential_time(spec, stype, cost)
    report = TuningReport(
        instance=spec.name,
        workers=localities * workers_per_locality,
        sequential_time=seq_time,
    )
    topology = Topology(localities, workers_per_locality)
    for skeleton, knob, overrides in _sweep_points(
        skeletons, d_cutoffs, budgets, spawn_probabilities
    ):
        params = SkeletonParams(
            localities=localities,
            workers_per_locality=workers_per_locality,
            seed=seed,
        ).with_(**overrides)
        cluster = SimulatedCluster(topology, cost)
        res = make_skeleton(skeleton, stype.kind).search(
            spec, params, stype=stype, cluster=cluster
        )
        report.results.append(
            TuningResult(
                skeleton=skeleton,
                knob=knob,
                params=params,
                speedup=seq_time / res.virtual_time,
                nodes=res.metrics.nodes,
                efficiency=res.efficiency(),
            )
        )
    return report
