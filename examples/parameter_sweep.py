#!/usr/bin/env python
"""Exploring alternate parallelisations (§5.5, Table 2 in miniature).

For one Knapsack instance, sweeps the Depth-Bounded cutoff and the
Budget backtrack budget and prints the resulting virtual-time speedups
over the Sequential skeleton — showing how sensitive each coordination
is to its knob, and why Stack-Stealing ("few parameters") is a safe
default when good parameters are unknown.

Run:  python examples/parameter_sweep.py
"""

from repro import SkeletonParams, search
from repro.apps.knapsack import knapsack_spec
from repro.core.searchtypes import Optimisation
from repro.instances.library import random_knapsack
from repro.runtime.executor import virtual_sequential_time

WORKERS = SkeletonParams(localities=2, workers_per_locality=8)


def main() -> None:
    inst = random_knapsack(26, seed=702, kind="strong")
    spec = knapsack_spec(inst, name="knap-strong-26")
    seq_time, seq_res = virtual_sequential_time(spec, Optimisation())
    print(f"sequential: {seq_res.metrics.nodes} nodes, "
          f"{seq_time:.0f} work units; optimum profit {seq_res.value}")
    print(f"topology: {WORKERS.localities} localities x "
          f"{WORKERS.workers_per_locality} workers\n")

    print("Depth-Bounded cutoff sweep:")
    for d in (1, 2, 3, 4, 5, 6):
        res = search(spec, skeleton="depthbounded", search_type="optimisation",
                     params=WORKERS.with_(d_cutoff=d))
        print(f"  d_cutoff={d}: speedup {seq_time / res.virtual_time:5.1f}x  "
              f"(tasks {res.metrics.spawns}, nodes {res.metrics.nodes})")

    print("Budget sweep:")
    for b in (10, 100, 1000, 10000):
        res = search(spec, skeleton="budget", search_type="optimisation",
                     params=WORKERS.with_(budget=b))
        print(f"  budget={b:<6}: speedup {seq_time / res.virtual_time:5.1f}x  "
              f"(tasks {res.metrics.spawns}, nodes {res.metrics.nodes})")

    print("Stack-Stealing (no knob to mis-set):")
    for chunked in (True, False):
        res = search(spec, skeleton="stacksteal", search_type="optimisation",
                     params=WORKERS.with_(chunked=chunked))
        label = "chunked" if chunked else "single "
        print(f"  {label}: speedup {seq_time / res.virtual_time:5.1f}x  "
              f"(steals {res.metrics.steals}, nodes {res.metrics.nodes})")


if __name__ == "__main__":
    main()
