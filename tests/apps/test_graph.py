"""Tests for the bitset-adjacency Graph."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.graph import Graph
from repro.instances.graphs import uniform_graph


def random_graphs():
    return st.builds(
        uniform_graph,
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=100),
    )


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.n == 0
        assert g.edge_count() == 0

    def test_from_edges(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(0, 5)])

    def test_adjacency_validation(self):
        with pytest.raises(ValueError):
            Graph(2, [0b10, 0b10])  # vertex 1 adjacent to itself

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_wrong_adjacency_length_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [0, 0])


class TestQueries:
    @pytest.fixture
    def path(self):
        return Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])

    def test_degree(self, path):
        assert [path.degree(v) for v in range(4)] == [1, 2, 2, 1]

    def test_neighbours(self, path):
        assert list(path.neighbours(1)) == [0, 2]

    def test_edges_each_once(self, path):
        assert list(path.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_edge_count(self, path):
        assert path.edge_count() == 3

    def test_density(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert g.density() == pytest.approx(1.0)

    def test_density_small_graph(self):
        assert Graph(1).density() == 0.0

    def test_subgraph_is_clique(self, path):
        assert path.subgraph_is_clique(0b0011)  # {0,1}
        assert not path.subgraph_is_clique(0b1001)  # {0,3}
        assert path.subgraph_is_clique(0b0001)  # singleton
        assert path.subgraph_is_clique(0)  # empty set


class TestComplementAndRelabel:
    @given(random_graphs())
    def test_complement_involution(self, g):
        assert g.complement().complement() == g

    @given(random_graphs())
    def test_complement_edge_flip(self, g):
        c = g.complement()
        for u in range(g.n):
            for v in range(u + 1, g.n):
                assert g.has_edge(u, v) != c.has_edge(u, v)

    def test_relabel_moves_edges(self):
        g = Graph.from_edges(3, [(0, 1)])
        h = g.relabel([2, 0, 1])  # vertex 2 -> 0, vertex 0 -> 1, vertex 1 -> 2
        assert h.has_edge(1, 2)
        assert h.edge_count() == 1

    @given(random_graphs())
    def test_relabel_preserves_degree_multiset(self, g):
        order = list(range(g.n))[::-1]
        h = g.relabel(order)
        assert sorted(g.degree(v) for v in range(g.n)) == sorted(
            h.degree(v) for v in range(h.n)
        )

    def test_relabel_requires_permutation(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.relabel([0, 0, 1])
