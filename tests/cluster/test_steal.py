"""Stack-stealing and ordered protocol tests, driven by scripted workers.

The STEAL/STOLEN exchange and the ordered fixed-bound lease/re-issue
cycle are coordinator decisions, so they are tested at the wire level
with the :class:`FakeWorker` from ``test_coordinator``: every frame the
coordinator emits (or must NOT emit) is observable deterministically.
"""

import pytest

from repro.cluster import protocol as P
from repro.cluster.coordinator import ClusterHandle

from tests.cluster.test_coordinator import (
    ENUM_PAYLOAD,
    OPT_PAYLOAD,
    FakeWorker,
    result_frame,
)

STEAL_ENUM = dict(ENUM_PAYLOAD, coordination="stacksteal")
STEAL_OPT = dict(OPT_PAYLOAD, coordination="stacksteal")

# Tiny seeded maxclique: the ordered frontier at d_cutoff=1 is small
# enough to script every lease by hand.
ORDERED_OPT = {
    "factory": "repro.verify.generators:instance_spec",
    "factory_args": ["maxclique", [6, 50, 1]],
    "stype_kind": "optimisation",
    "stype_kwargs": {},
    "coordination": "ordered",
    "d_cutoff": 1,
    "budget": 1000,
    "share_poll": 64,
}


@pytest.fixture
def handle():
    h = ClusterHandle(heartbeat_interval=0.1, heartbeat_timeout=0.6)
    h.start()
    yield h
    h.shutdown(drain_workers=False)


def stolen_frame(task_msg, nodes, depth=3):
    """A STOLEN frame splitting ``nodes`` off the held lease."""
    return {
        "type": P.STOLEN,
        "job": task_msg["job"],
        "task": task_msg["task"],
        "epoch": task_msg["epoch"],
        "depth": depth,
        "nodes": [P.encode_node(n) for n in nodes],
    }


class TestStealMediation:
    def test_idle_worker_triggers_steal_from_victim(self, handle):
        w1 = FakeWorker(*handle.address, name="victim")
        w2 = FakeWorker(*handle.address, name="thief")
        try:
            fut = handle.run_job_future(STEAL_ENUM, timeout=10)
            root = w1.recv(P.TASK)
            # Queue is empty and w2 is idle: the coordinator must ask
            # the one busy worker to split its live stack.
            steal = w1.recv(P.STEAL)
            assert steal["job"] == root["job"]
            w1.send(stolen_frame(root, [(1, 2)]))
            t2 = w2.recv(P.TASK)
            assert P.decode_node(t2["node"]) == (1, 2)
            assert t2["depth"] == 3
            w1.send(result_frame(root, knowledge=1))
            w2.send(result_frame(t2, knowledge=10))
            res = fut.result(timeout=10)
            assert res.value == 11
            assert res.metrics.steals == 1
            assert res.workers == 2
        finally:
            w1.close()
            w2.close()

    def test_no_second_steal_while_one_is_pending(self, handle):
        w1 = FakeWorker(*handle.address, name="victim")
        w2 = FakeWorker(*handle.address, name="thief")
        try:
            fut = handle.run_job_future(STEAL_ENUM, timeout=10)
            root = w1.recv(P.TASK)
            w1.recv(P.STEAL)
            # The victim hasn't answered: no duplicate request may
            # arrive no matter how often the pump runs.
            w1.assert_no_frame(P.STEAL, within=0.5)
            w1.send(stolen_frame(root, [(5,)]))
            t2 = w2.recv(P.TASK)
            w1.send(result_frame(root, knowledge=1))
            w2.send(result_frame(t2, knowledge=10))
            assert fut.result(timeout=10).value == 11
        finally:
            w1.close()
            w2.close()

    def test_dry_victim_not_asked_again_until_next_result(self, handle):
        w1 = FakeWorker(*handle.address, name="victim")
        w2 = FakeWorker(*handle.address, name="thief")
        try:
            fut = handle.run_job_future(STEAL_ENUM, timeout=10)
            root = w1.recv(P.TASK)
            w1.recv(P.STEAL)
            # Empty STOLEN: nothing divisible on the stack right now.
            w1.send({"type": P.STOLEN, "job": root["job"], "nodes": []})
            # A dry victim must not be hammered with more requests...
            w1.assert_no_frame(P.STEAL, within=0.5)
            # ...until new work appears: a RESULT clears the dry flags.
            w1.send(stolen_frame(root, [(8,)]))  # late fruit, still valid
            t2 = w2.recv(P.TASK)
            w2.send(result_frame(t2, knowledge=100))
            w1.recv(P.STEAL)  # w2 went idle again -> fresh request
            w1.send(result_frame(root, knowledge=1))
            assert fut.result(timeout=10).value == 101
        finally:
            w1.close()
            w2.close()

    def test_old_protocol_peers_are_never_victims_or_thieves(self, handle):
        # A v2 peer cannot answer STEAL or run coordination-aware
        # leases, so for a stacksteal job it is invisible: not a lease
        # target, not a victim, and its idleness must not trigger
        # steals it could never consume.
        w_old = FakeWorker(*handle.address, name="v2-peer", version=2)
        w_victim = FakeWorker(*handle.address, name="v3-victim")
        w_thief = FakeWorker(*handle.address, name="v3-thief")
        try:
            fut = handle.run_job_future(STEAL_ENUM, timeout=10)
            # Only v3 peers are eligible: the root skips the v2 peer
            # even though it connected first.
            root = w_victim.recv(P.TASK)
            w_old.assert_no_frame(P.STEAL, within=0.4)
            w_victim.recv(P.STEAL)  # on behalf of the idle v3 thief
            w_victim.send(stolen_frame(root, [(4,)]))
            w_old.assert_no_frame(P.TASK, within=0.4)
            t2 = w_thief.recv(P.TASK)
            assert P.decode_node(t2["node"]) == (4,)
            w_victim.send(result_frame(root, knowledge=1))
            w_thief.send(result_frame(t2, knowledge=10))
            res = fut.result(timeout=10)
            assert res.value == 11
            assert res.workers == 2
        finally:
            w_old.close()
            w_victim.close()
            w_thief.close()

    def test_stolen_racing_retire_drain(self, handle):
        """A STEAL answered after the victim was told to RETIRE.

        The offcuts are still a valid split of a lease the retiring
        worker holds, so they must be accepted and re-leased to the
        survivor — and the drained worker must get no further STEAL.
        """
        w1 = FakeWorker(*handle.address, name="w1")
        w2 = FakeWorker(*handle.address, name="w2")
        try:
            fut = handle.run_job_future(STEAL_OPT, timeout=15)
            root = w1.recv(P.TASK)
            w1.recv(P.STEAL)
            # The deployment decides to drain w1 while the steal request
            # is in flight.
            assert handle.retire_worker("w1") is True
            w1.recv(P.RETIRE)
            # The STOLEN answer crosses the RETIRE on the wire.
            w1.send(stolen_frame(root, [("s",)]))
            t2 = w2.recv(P.TASK)
            assert P.decode_node(t2["node"]) == ("s",)
            # The retiring worker finishes its running task and is gone;
            # it must never be asked to split again.
            w1.send(result_frame(root, value=3, node=("r3",)))
            w1.assert_no_frame(P.STEAL, within=0.4)
            w2.send(result_frame(t2, value=7, node=("s7",)))
            res = fut.result(timeout=10)
            assert res.value == 7
            assert res.node == ("s7",)
            assert res.metrics.steals == 1
        finally:
            w1.close()
            w2.close()

    def test_stale_stolen_epoch_rejected(self, handle):
        w1 = FakeWorker(*handle.address, name="victim")
        w2 = FakeWorker(*handle.address, name="thief")
        try:
            fut = handle.run_job_future(STEAL_ENUM, timeout=10)
            root = w1.recv(P.TASK)
            w1.recv(P.STEAL)
            # Wrong epoch: if accepted, outstanding would overcount and
            # the job below could never finish.
            bad = stolen_frame(root, [(9,)])
            bad["epoch"] = root["epoch"] + 5
            w1.send(bad)
            w2.assert_no_frame(P.TASK, within=0.4)
            w1.send(result_frame(root, knowledge=7))
            res = fut.result(timeout=10)
            assert res.value == 7
            assert res.metrics.steals == 0
        finally:
            w1.close()
            w2.close()


class TestOrderedLeases:
    def test_leases_carry_bounds_and_reissue_on_stale_bound(self, handle):
        """The replicable-BnB speculation loop at the wire level.

        Frontier tasks lease out with ``bound=None`` (speculative); a
        RESULT searched under a bound that is stale by finalisation
        time is discarded and the task re-issued with the required
        bound pinned in the lease — observable as an epoch bump plus a
        concrete 5th lease element.
        """
        w = FakeWorker(*handle.address, slots=1)
        try:
            fut = handle.run_job_future(ORDERED_OPT, timeout=20)
            job = w.recv(P.JOB)
            assert job["coordination"] == "ordered"
            base = job["best"]  # the search type's identity bound

            first = w.recv(P.TASK)
            assert first["bound"] is None  # speculative first issue
            w.send(result_frame(first, value=5, node=("w5",), bound=base))

            reissued = 0
            answered = 1
            while not fut.done():
                try:
                    task = w.recv(P.TASK, timeout=2.0)
                except (AssertionError, TimeoutError):
                    break  # job completed while we waited
                if task["bound"] is not None:
                    # Pinned re-issue: the bound the ledger now demands.
                    assert task["epoch"] >= 1
                    assert task["bound"] == 5
                    reissued += 1
                    w.send(result_frame(task, bound=task["bound"]))
                else:
                    # Deliberately answer under the stale identity bound
                    # so finalisation must reject and re-issue it.
                    w.send(result_frame(task, bound=base))
                answered += 1
            res = fut.result(timeout=10)
            assert res.value == 5
            assert res.node == ("w5",)
            assert reissued >= 1
            assert res.metrics.reassigned == reissued
            assert res.metrics.broadcasts >= 1  # best=5 was broadcast
        finally:
            w.close()

    def test_ordered_enum_survives_worker_death(self, handle):
        """Ordered enumeration tasks are pure functions of (root,
        bound), so a worker death re-leases instead of failing the job
        — the one enumeration flow where that is sound."""
        enum_payload = dict(ORDERED_OPT, stype_kind="enumeration",
                            factory_args=["uts", [2, 3, 7]])
        w1 = FakeWorker(*handle.address, name="doomed")
        w2 = FakeWorker(*handle.address, name="survivor", slots=4)
        try:
            fut = handle.run_job_future(enum_payload, timeout=20)
            first = w1.recv(P.TASK)
            w1.stop_heartbeat()  # dies holding an ordered lease
            seen = {first["task"]: 0}
            while not fut.done():
                try:
                    task = w2.recv(P.TASK, timeout=2.0)
                except (AssertionError, TimeoutError):
                    break  # job completed while we waited
                w2.send(result_frame(task, knowledge=3, bound=None))
                seen[task["task"]] = seen.get(task["task"], 0) + 1
            res = fut.result(timeout=10)
            # The doomed worker's task was re-run by the survivor.
            assert seen[first["task"]] == 1
            assert res.metrics.reassigned >= 1
            # Every task's accumulator counted exactly once, on top of
            # the coordinator's own phase-1 prefix contribution.
            assert res.value >= 3 * len(seen)
            assert (res.value - 3 * len(seen)) < 3  # no double count
        finally:
            w1.close()
            w2.close()
