"""Ablation: order-preserving workpool vs classic LIFO deque (§2.3).

The paper's central argument for a search-specific framework is that
"standard deque-based work-stealing breaks heuristic search orders".
This bench makes that claim measurable: the same Depth-Bounded
MaxClique searches run over the order-preserving pool (YewPar's
depthpool analogue), a FIFO pool, and a LIFO deque.

Expected shape: the order-preserving pool visits tasks in heuristic
order, finds strong incumbents early and prunes more, so it expands
fewer nodes (and usually finishes sooner) than the LIFO deque, which
schedules heuristically-late subtrees first.
"""

from repro.core.params import SkeletonParams
from repro.util.stats import geometric_mean

from ._harness import fmt_row, run_parallel, write_result

INSTANCES = ["sanr100-1", "brock100-1", "p_hat100-2", "sanr110-1"]
PARAMS = SkeletonParams(localities=1, workers_per_locality=15, d_cutoff=2)
DISCIPLINES = ["order", "fifo", "lifo"]


def test_ablation_pool_ordering(benchmark):
    nodes: dict[str, dict[str, int]] = {d: {} for d in DISCIPLINES}
    times: dict[str, dict[str, float]] = {d: {} for d in DISCIPLINES}

    def run_all():
        for name in INSTANCES:
            for disc in DISCIPLINES:
                res = run_parallel(name, "depthbounded", PARAMS, pool_discipline=disc)
                nodes[disc][name] = res.metrics.nodes
                times[disc][name] = res.virtual_time

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    widths = [14, 12, 12, 12, 12]
    lines = [
        "Ablation: workpool discipline (Depth-Bounded MaxClique, 15 workers)",
        fmt_row(["instance", "order", "fifo", "lifo", "lifo/order"], widths),
        "  (cells: nodes expanded; last column: node ratio)",
    ]
    for name in INSTANCES:
        ratio = nodes["lifo"][name] / nodes["order"][name]
        lines.append(
            fmt_row(
                [name, nodes["order"][name], nodes["fifo"][name],
                 nodes["lifo"][name], f"{ratio:.2f}x"],
                widths,
            )
        )
    geo = geometric_mean(
        [nodes["lifo"][n] / nodes["order"][n] for n in INSTANCES]
    )
    lines.append(
        f"geo-mean node inflation of LIFO over order-preserving: {geo:.2f}x "
        "(paper §2.3: deques break heuristic order)"
    )
    write_result("ablation_ordering", lines)

    # The order-preserving pool should not lose to the deque overall.
    assert geo > 0.95
