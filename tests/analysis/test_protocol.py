"""protocol-exhaustiveness: the real tree is clean, and removing any
piece of frame plumbing demonstrably fails the analysis."""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.analysis.core import Project, run_analysis
from repro.analysis.rules.protocol_exhaustive import ProtocolExhaustiveRule
from repro.cluster import protocol

REPO_ROOT = Path(__file__).resolve().parents[2]
CLUSTER_DIR = REPO_ROOT / "src" / "repro" / "cluster"


def check(project):
    return run_analysis(
        project,
        [ProtocolExhaustiveRule()],
        check_suppression_hygiene=False,
    )


def load_cluster_copy(tmp_path) -> tuple[Path, Path]:
    """Copy the real cluster package into a tmp tree for mutation."""
    dest = tmp_path / "repro" / "cluster"
    shutil.copytree(CLUSTER_DIR, dest, ignore=shutil.ignore_patterns("__pycache__"))
    return tmp_path, dest


def project_over(root: Path, cluster: Path) -> Project:
    return Project.load(root, sorted(cluster.glob("*.py")))


class TestRealTree:
    def test_cluster_package_is_exhaustive(self, tmp_path):
        root, cluster = load_cluster_copy(tmp_path)
        report = check(project_over(root, cluster))
        assert report.findings == []

    def test_every_declared_frame_seen_by_rule(self, tmp_path):
        # Guards against the rule silently matching nothing: it must
        # recognise the same frame constants the protocol exports.
        from repro.analysis.rules.protocol_exhaustive import _declared_frames

        root, cluster = load_cluster_copy(tmp_path)
        project = project_over(root, cluster)
        src = project.find_suffix("cluster/protocol.py")
        frames = _declared_frames(src)
        declared = {
            name
            for name in protocol.__all__
            if name.isupper() and getattr(protocol, name) == name
        }
        assert set(frames) == declared
        assert len(frames) >= 10


class TestNegative:
    """Break the plumbing one way at a time; the rule must notice."""

    def _mutate(self, path: Path, old: str, new: str) -> None:
        text = path.read_text()
        assert old in text, f"fixture drift: {old!r} not in {path.name}"
        path.write_text(text.replace(old, new))

    def test_removed_worker_dispatch_arm_is_flagged(self, tmp_path):
        root, cluster = load_cluster_copy(tmp_path)
        worker = cluster / "worker.py"
        # Neutralise every reference to the ERROR frame in the worker.
        self._mutate(worker, "P.ERROR", "None")
        report = check(project_over(root, cluster))
        hits = [
            f
            for f in report.findings
            if "'ERROR'" in f.message and "worker" in f.message
        ]
        assert len(hits) == 1
        assert "missing dispatch arm" in hits[0].message

    def test_removed_codec_tag_is_flagged(self, tmp_path):
        root, cluster = load_cluster_copy(tmp_path)
        codec = cluster / "codec.py"
        self._mutate(codec, '"HEARTBEAT", ', "")
        report = check(project_over(root, cluster))
        hits = [f for f in report.findings if "HEARTBEAT" in f.message]
        assert any("no binary codec tag" in f.message for f in hits)

    def test_new_unplumbed_frame_is_flagged(self, tmp_path):
        root, cluster = load_cluster_copy(tmp_path)
        proto = cluster / "protocol.py"
        proto.write_text(
            proto.read_text() + '\nNEW_FRAME = "NEW_FRAME"\n'
        )
        report = check(project_over(root, cluster))
        messages = " | ".join(f.message for f in report.findings)
        assert "NEW_FRAME" in messages
        # Missing everywhere: codec tag + both dispatch sides.
        errors = [
            f
            for f in report.findings
            if "NEW_FRAME" in f.message and f.severity.value == "error"
        ]
        assert len(errors) >= 3

    def test_missing_companion_module_is_warning_only(self, tmp_path):
        root, cluster = load_cluster_copy(tmp_path)
        (cluster / "worker.py").unlink()
        report = check(project_over(root, cluster))
        assert report.errors == 0
        assert any(
            "cluster/worker.py" in f.message for f in report.findings
        )


class TestInert:
    def test_no_protocol_module_no_findings(self, project_from):
        project = project_from({"app.py": "x = 1\n"})
        assert check(project).findings == []
