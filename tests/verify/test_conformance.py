"""The tier-1 conformance matrix: a small fixed-seed slice of what the
nightly ``repro verify`` job runs at scale.

Everything here is deterministic: the instance stream, the knob draws
and the chaos plans are pure functions of the seeds below, so a failure
reproduces with ``repro verify --backend B --seed S``.
"""

import json
import os

import pytest

from repro.cluster.coordinator import ClusterJobFailed
from repro.cluster.local import cluster_budget_search
from repro.core.searchtypes import make_search_type
from repro.verify.differential import run_verify
from repro.verify.generators import Instance, instance_spec

pytestmark = pytest.mark.conformance


class TestSimMatrix:
    # Each seed drives 5 rounds x (families cycling) x a fresh knob draw
    # over every sim coordination — cheap, in-process, deterministic.
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sim_conforms(self, seed):
        assert run_verify(backend="sim", seed=seed, rounds=5) == 0

    def test_sequential_conforms(self):
        # The oracle checked against itself: catches oracle regressions.
        assert run_verify(backend="sequential", seed=11, rounds=5) == 0


class TestRealParallelism:
    def test_processes_conform(self):
        assert run_verify(backend="processes", seed=2, rounds=3) == 0

    def test_cluster_conforms(self):
        assert run_verify(
            backend="cluster", seed=3, rounds=2, cluster_timeout=45.0
        ) == 0

    def test_cluster_survives_chaos(self):
        # Seeded fault schedules: kills, partitions, dropped frames,
        # delayed heartbeats — results must still conform exactly.
        assert run_verify(
            backend="cluster", seed=7, rounds=2, chaos=True,
            cluster_timeout=60.0,
        ) == 0


class TestEnumerationFailsLoudly:
    def test_worker_death_mid_enumeration_raises(self):
        # Losing a worker during enumeration is unrecoverable (part of
        # the accumulated sum dies with it); the contract is a loud
        # ClusterJobFailed, never a silently wrong total.
        inst = Instance("uts", (2, 3, 12345))
        with pytest.raises(ClusterJobFailed):
            cluster_budget_search(
                instance_spec,
                (inst.family, inst.args),
                make_search_type("enumeration"),
                n_workers=1,
                budget=1,
                timeout=30.0,
                heartbeat_interval=0.1,
                heartbeat_timeout=1.0,
                fault_plan={
                    "events": [
                        {"kind": "kill_worker", "worker": "local-0",
                         "at_task": 1}
                    ]
                },
            )


class TestMutationSensitivity:
    """The harness must catch a deliberately broken incumbent merge.

    ``REPRO_VERIFY_MUTATION=incumbent-ordering`` flips
    ``Optimisation.combine`` to last-write-wins (see docs/verify.md):
    a worker publishing a *weaker* incumbent late then clobbers a
    better one during the parallel merge.  The sequential oracle never
    calls ``combine``, so it stays sound — exactly the asymmetry the
    differential harness exists to exploit.  Sim runs are deterministic,
    so the catching seed below fails every time.
    """

    SEED = 3  # fails at round 3: knapsack(6, ...) under 4 sim workers

    def test_incumbent_ordering_bug_caught_and_shrunk(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_VERIFY_MUTATION", "incumbent-ordering")
        rc = run_verify(
            backend="sim", seed=self.SEED, rounds=4,
            artifact_dir=str(tmp_path),
        )
        assert rc == 1
        artifacts = sorted(tmp_path.glob("fail-*.json"))
        assert artifacts, "a failing round must leave a repro artifact"
        repro = json.loads(artifacts[0].read_text())
        assert repro["issues"]
        assert repro["shrunk"] is not None
        shrunk = Instance.from_dict(repro["shrunk"])
        original = Instance.from_dict(repro["instance"])
        assert shrunk.family == original.family
        assert shrunk.args[-1] == original.args[-1]  # seed preserved

    def test_same_seed_clean_without_mutation(self, tmp_path):
        assert os.environ.get("REPRO_VERIFY_MUTATION") is None
        rc = run_verify(
            backend="sim", seed=self.SEED, rounds=4,
            artifact_dir=str(tmp_path),
        )
        assert rc == 0
        assert not list(tmp_path.glob("fail-*.json"))


class TestDriver:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_verify(backend="gpu", rounds=1)

    def test_chaos_requires_cluster(self):
        with pytest.raises(ValueError, match="chaos"):
            run_verify(backend="sim", chaos=True, rounds=1)

    def test_log_lines_name_every_cell(self):
        lines = []
        run_verify(backend="sequential", seed=11, rounds=2, log=lines.append)
        assert sum(": ok" in line for line in lines) == 2
        assert any("conform" in line for line in lines)
