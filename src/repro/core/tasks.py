"""Resumable search tasks: the coordination state machines.

A :class:`SearchTask` is one unit of work from the semantics — a subtree
rooted at ``root`` — together with the traversal state needed to search
it: the generator stack and the backtrack counter.  The task advances
one reduction at a time via :meth:`step`, which makes the *same* state
machine drivable in two ways:

- a tight ``while not finished: step()`` loop (the Sequential skeleton
  and the real-thread backend), and
- one step per simulated time quantum (the discrete-event cluster),

so the simulated parallel search expands exactly the tree a real worker
would, given the same knowledge-arrival timing.

The coordination (``seq`` / ``depth`` / ``budget`` / ``stack`` /
``random``) is a parameter: it only changes *when subtrees are given
away*, never how the tree is traversed — mirroring how Figure 2 factors
spawn rules apart from traversal rules.  ``random`` is the extension
coordination §4.2 suggests ("random task creation"): each generated
child becomes a task with probability ``spawn_probability``, a direct
instance of the generic (spawn) rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.genstack import GeneratorStack
from repro.core.nodegen import ListNodeGenerator
from repro.core.params import SkeletonParams
from repro.core.searchtypes import SearchType
from repro.core.space import SearchSpec
from repro.util.rng import SplitMix64

__all__ = [
    "StepOutcome",
    "SearchTask",
    "SpawnedTask",
    "split_lowest_inlined",
    "split_one_inlined",
    "SEQ",
    "DEPTH",
    "BUDGET",
    "STACK",
    "RANDOM",
    "ORDERED",
]

SEQ = "seq"
DEPTH = "depth"
BUDGET = "budget"
STACK = "stack"
RANDOM = "random"
# Ordered: Depth-Bounded task generation, but tasks carry their
# heuristic-order path key and execute from a single rank-ordered pool —
# the replicable branch-and-bound discipline of Archibald et al. [4]
# (cited in the paper's §2.1 as the anomaly-controlling skeleton).
ORDERED = "ordered"
_POLICIES = (SEQ, DEPTH, BUDGET, STACK, RANDOM, ORDERED)


@dataclass(frozen=True)
class SpawnedTask:
    """A child subtree handed to the workpool.

    ``key`` is the root's sibling-index path from the global root —
    lexicographic order on keys is the sequential traversal (heuristic)
    order, which the Ordered coordination's workpool ranks by.
    """

    root: Any
    depth: int
    key: tuple = ()


_NO_SPAWNS: tuple = ()


class StepOutcome:
    """What one :meth:`SearchTask.step` did (for metrics and cost model).

    A plain mutable record.  Each task *reuses* one outcome object
    across steps (one is read per simulated event, so allocation here
    is simulator hot path); callers must consume the fields before the
    task's next step.
    """

    __slots__ = (
        "processed",
        "pruned",
        "backtracked",
        "improved",
        "goal",
        "finished",
        "spawned",
        "weight",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Clear all flags for the next step."""
        self.processed = False  # a node was visited and processed
        self.pruned = False  # a processed node's subtree was discarded
        self.backtracked = False  # an exhausted generator was popped
        self.improved = False  # the incumbent was strengthened
        self.goal = False  # decision target reached -> stop everything
        self.finished = False  # this task is complete
        self.spawned: Any = _NO_SPAWNS  # fresh list only when spawning
        self.weight = 1  # cost weight of the processed node (spec.node_size)


def split_lowest_inlined(gens: list) -> tuple[list, int]:
    """(spawn-budget) for the *inlined* fast-path driver.

    Fast worker loops (``sequential_search`` and the dynamic
    multiprocessing backend) keep a plain list of node generators rather
    than a :class:`~repro.core.genstack.GeneratorStack`; this helper
    applies the same bottom-up splitting rule (Listing 4, lines 8-14) to
    that representation: take *all* remaining children of the first
    non-exhausted generator nearest the root — the heuristically largest
    unexplored subtrees.

    Returns ``(nodes, frame_index)`` where ``frame_index`` is the
    position of the drained generator in ``gens`` (the spawned nodes
    live at task-relative depth ``frame_index + 1``), or ``([], -1)``
    when every generator is exhausted.  Splitting only consumes
    generator output, so it cannot change which nodes the search visits
    — only *where* they are visited (Theorem 3.1's interleaving
    argument).

    Degenerate splits are refused: when the only splittable work is a
    *single* remaining child and no deeper generator has anything left,
    draining it would hand the entire remaining subtree to a new task
    and leave the donor empty.  On chain-like trees that ping-pongs the
    whole search through the work queue every budget trip (task count ~
    nodes/budget) with zero balancing benefit — and on the cluster
    backend every bounce is a full OFFCUT/TASK round trip.  Generators
    cannot be rewound, so the already-drawn child is restored by
    swapping the exhausted donor for a one-element
    :class:`~repro.core.nodegen.ListNodeGenerator`, and ``([], -1)`` is
    returned: keep the subtree local.
    """
    for index, gen in enumerate(gens):
        if gen.has_next():
            nodes = [gen.next()]
            while gen.has_next():
                nodes.append(gen.next())
            if len(nodes) == 1 and not any(
                deeper.has_next() for deeper in gens[index + 1 :]
            ):
                gens[index] = ListNodeGenerator(nodes)
                return [], -1
            return nodes, index
    return [], -1


def split_one_inlined(gens: list) -> tuple[list, int]:
    """(spawn-stack), un-chunked, for the inlined fast-path driver.

    The single-node variant of :func:`split_lowest_inlined`: take *one*
    child from the first non-exhausted generator nearest the root (the
    stolen node of the (spawn-stack) rule) and leave the rest in place.
    Generators cannot be partially drained and restored one element at a
    time, so the frame is drained as in the chunked split and the
    remainder re-installed as a :class:`ListNodeGenerator` at the same
    position — the traversal continues from it unchanged.

    Returns ``(nodes, frame_index)`` with at most one node; the same
    degenerate-split refusal applies (a lone child with no deeper work
    stays local, returning ``([], -1)``).
    """
    nodes, index = split_lowest_inlined(gens)
    if not nodes:
        return [], -1
    if len(nodes) > 1:
        gens[index] = ListNodeGenerator(nodes[1:])
    return [nodes[0]], index


class SearchTask:
    """Searches the subtree under ``root`` depth-first, lazily.

    ``root_depth`` is the root's depth in the *global* search tree; the
    Depth-Bounded cutoff is defined against global depth, so tasks must
    carry it.
    """

    __slots__ = (
        "spec",
        "stype",
        "policy",
        "params",
        "root",
        "root_depth",
        "stack",
        "backtracks",
        "_started",
        "_finished",
        "_rng",
        "key",
        "_out",
    )

    def __init__(
        self,
        spec: SearchSpec,
        stype: SearchType,
        root: Any,
        *,
        policy: str = SEQ,
        params: Optional[SkeletonParams] = None,
        root_depth: int = 0,
        task_seed: int = 0,
        key: tuple = (),
    ) -> None:
        if policy not in _POLICIES:
            raise ValueError(f"unknown coordination policy {policy!r}")
        self.spec = spec
        self.stype = stype
        self.policy = policy
        self.params = params if params is not None else SkeletonParams()
        self.root = root
        self.root_depth = root_depth
        self.key = key
        self.stack = GeneratorStack()
        self.backtracks = 0
        self._started = False
        self._finished = False
        self._out = StepOutcome()  # reused across steps (see StepOutcome)
        # Only the Random coordination consumes randomness; seeded per
        # task so runs stay deterministic.
        self._rng = (
            SplitMix64(self.params.seed ^ (task_seed * 0x9E3779B9) ^ 0x5EED)
            if policy == RANDOM
            else None
        )

    # -- public protocol ----------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    def current_depth(self) -> int:
        """Global depth of the node currently being explored (the top
        frame's node; frame depths are task-relative)."""
        if not self.stack:
            return self.root_depth
        return self.root_depth + self.stack.top().depth

    def step(self, knowledge: Any) -> tuple[Any, StepOutcome]:
        """Perform one reduction; returns updated knowledge and outcome.

        Exactly one of the semantics' step shapes happens per call:
        schedule-and-process the root, spawn (budget exhaustion or
        depth-bounded child), expand-and-process a child, or backtrack.
        """
        out = self._out
        out.reset()
        if self._finished:
            out.finished = True
            return knowledge, out

        if not self._started:
            return self._start(knowledge, out)

        # (spawn-budget): Listing 4 line 7 — check the budget before the
        # next traversal step, spawn the lowest unexplored subtrees and
        # reset the counter.
        if self.policy == BUDGET and self.backtracks >= self.params.budget:
            nodes, depth, keys = self.stack.split_lowest()
            self.backtracks = 0
            if nodes:
                gdepth = self.root_depth + depth
                out.spawned = [
                    SpawnedTask(n, gdepth, self.key + k)
                    for n, k in zip(nodes, keys)
                ]
                return knowledge, out

        if not self.stack:
            self._finished = True
            out.finished = True
            return knowledge, out

        frame = self.stack.top()
        if frame.gen.has_next():
            child, child_index = self.stack.next_from_top()
            child_depth = self.root_depth + frame.depth + 1
            # (spawn-depth): while the *parent* is above the cutoff,
            # children become tasks instead of being searched in place.
            # The child is left unprocessed; it is processed when its
            # task is scheduled, as in the semantics.  Ordered uses the
            # same rule; only its workpool discipline differs.
            if (
                self.policy in (DEPTH, ORDERED)
                and (self.root_depth + frame.depth) < self.params.d_cutoff
            ):
                key = self.key + self.stack.current_key() + (child_index,)
                out.spawned = [SpawnedTask(child, child_depth, key)]
                return knowledge, out
            # The generic (spawn) rule with a coin flip: hive off this
            # unexplored child as a task instead of searching it here.
            if (
                self.policy == RANDOM
                and self._rng.random() < self.params.spawn_probability
            ):
                key = self.key + self.stack.current_key() + (child_index,)
                out.spawned = [SpawnedTask(child, child_depth, key)]
                return knowledge, out
            return self._process_and_push(child, child_index, knowledge, out)

        # (backtrack)
        self.stack.pop()
        self.backtracks += 1
        out.backtracked = True
        if not self.stack:
            self._finished = True
            out.finished = True
        return knowledge, out

    def try_split(self, *, chunked: bool) -> list[SpawnedTask]:
        """(spawn-stack): give away unexplored subtrees nearest the root.

        Called by the scheduler when a steal request reaches this task's
        worker.  Returns one stolen node, or all nodes at the victim's
        lowest unexplored depth when ``chunked``; empty list if there is
        nothing to give.
        """
        if self._finished or not self._started:
            return []
        if chunked:
            nodes, depth, keys = self.stack.split_lowest()
            if not nodes:
                return []
            gdepth = self.root_depth + depth
            return [
                SpawnedTask(n, gdepth, self.key + k) for n, k in zip(nodes, keys)
            ]
        split = self.stack.split_one()
        if split is None:
            return []
        node, depth, key = split
        return [SpawnedTask(node, self.root_depth + depth, self.key + key)]

    # -- internals ------------------------------------------------------------

    def _start(self, knowledge: Any, out: StepOutcome) -> tuple[Any, StepOutcome]:
        """(schedule) + node-processing of the task root."""
        self._started = True
        knowledge, out.improved = self.stype.process(self.spec, self.root, knowledge)
        out.processed = True
        if self.spec.node_size is not None:
            out.weight = self.spec.node_size(self.root)
        if self.stype.is_goal(knowledge):
            out.goal = True
            self._finished = True
            out.finished = True
            return knowledge, out
        if self.stype.should_prune(self.spec, self.root, knowledge):
            # The whole task was invalidated (e.g. by a bound that
            # arrived since it was spawned): it dies without expansion.
            out.pruned = True
            self._finished = True
            out.finished = True
            return knowledge, out
        self.stack.push(self.root, self.spec.children_of(self.root))
        return knowledge, out

    def _process_and_push(
        self, child: Any, child_index: int, knowledge: Any, out: StepOutcome
    ) -> tuple[Any, StepOutcome]:
        """(expand) + node-processing, with the (prune) check."""
        knowledge, out.improved = self.stype.process(self.spec, child, knowledge)
        out.processed = True
        if self.spec.node_size is not None:
            out.weight = self.spec.node_size(child)
        if self.stype.is_goal(knowledge):
            out.goal = True
            self._finished = True
            out.finished = True
            return knowledge, out
        if self.stype.should_prune(self.spec, child, knowledge):
            out.pruned = True  # subtree under child abandoned before creation
            return knowledge, out
        self.stack.push(child, self.spec.children_of(child), index=child_index)
        return knowledge, out
