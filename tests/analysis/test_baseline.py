"""Baseline round-trip: save, load, apply, gate on new findings only."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.core import AnalysisReport
from repro.analysis.findings import Finding, Severity


def _report(findings):
    return AnalysisReport(
        findings=list(findings), suppressed=0, files=1, rules=["demo"]
    )


ERROR = Finding(path="a.py", line=3, col=0, rule="demo", message="old bug")
WARNING = Finding(
    path="a.py", line=9, col=0, rule="demo", message="nit",
    severity=Severity.WARNING,
)


class TestRoundTrip:
    def test_save_then_load_recovers_fingerprints(self, tmp_path):
        path = tmp_path / "baseline.json"
        count = save_baseline(path, _report([ERROR, WARNING]))
        assert count == 1  # warnings are never baselined
        assert load_baseline(path) == {ERROR.fingerprint}

    def test_apply_splits_known_from_fresh(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, _report([ERROR]))
        fresh = Finding(
            path="a.py", line=5, col=0, rule="demo", message="new bug"
        )
        # The old finding drifted to another line: still baselined,
        # because fingerprints exclude line numbers.
        drifted = Finding(
            path="a.py", line=40, col=2, rule="demo", message="old bug"
        )
        report = apply_baseline(
            _report([drifted, fresh]), load_baseline(path)
        )
        assert report.baselined == 1
        assert report.findings == [fresh]
        assert report.errors == 1

    def test_saved_file_is_valid_sorted_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, _report([ERROR]))
        data = json.loads(path.read_text())
        assert data["version"] == 1
        (entry,) = data["findings"]
        assert entry["fingerprint"] == ERROR.fingerprint
        assert entry["rule"] == "demo"


class TestValidation:
    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError, match="unsupported baseline"):
            load_baseline(path)

    def test_non_dict_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[]")
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_committed_repo_baseline_is_empty(self, repo_root=None):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        known = load_baseline(root / "analysis-baseline.json")
        assert known == set(), (
            "the repo baseline must stay empty: fix findings or add an"
            " inline '# repro: allow[...] -- reason' suppression"
        )
