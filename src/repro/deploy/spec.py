"""Worker specifications: what one fleet member looks like.

A :class:`WorkerSpec` is the deployment's template for spawning
`cluster-worker` processes — the dask ``SpecCluster`` idea reduced to
what this runtime needs: every worker in the fleet is stamped from one
spec (name prefix + monotone index, lease slots, give-up budget), so
scaling is just "spawn another one of these" / "retire one of these".

The spec also carries the optional chaos-event list so fault plans ride
into elastically-spawned workers exactly as they do into the fixed
fan-out of :func:`repro.cluster.local.cluster_budget_search`.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Optional

from repro.cluster.worker import _worker_process_main

__all__ = ["WorkerSpec"]

# Fleet workers are started with the *spawn* context, not the platform
# default fork.  An elastic deployment forks at unpredictable moments
# from a background adapt thread while scheduler threads are running
# arbitrary code; fork would snapshot whatever locks those threads hold
# (module import locks especially) into a child that has no thread to
# ever release them — a worker that connects and heartbeats but never
# searches.  Spawn pays ~0.5s of interpreter start-up per worker for
# immunity to that whole class of deadlock.
_CTX = multiprocessing.get_context("spawn")


@dataclass(frozen=True)
class WorkerSpec:
    """Template for one elastic fleet worker.

    Attributes:
        name_prefix: workers are named ``{name_prefix}-{index}`` with a
            monotone index — names never recycle, so coordinator
            diagnostics and chaos plans address workers unambiguously
            across respawns.
        slots: concurrent leases each worker asks for (>1 enables task
            prefetch; unstarted prefetched leases are what a RETIRE
            hands back).  Defaults to 2 — double-buffering, so the hot
            loop never stalls on a RESULT -> TASK round trip.
        give_up_after: seconds a worker keeps retrying an unreachable
            coordinator before exiting on its own — bounds orphan spin
            if the deployment dies without draining.
        wire_codec: preferred frame body format offered in HELLO
            (``"binary"`` or ``"json"``; the coordinator's preference
            wins when both are offered).
        chaos_events: optional fault-plan event list (see
            :mod:`repro.cluster.faults`); events addressed to a
            worker's name become its injection hooks.
    """

    name_prefix: str = "deploy"
    slots: int = 2
    give_up_after: Optional[float] = 30.0
    wire_codec: str = "binary"
    chaos_events: Optional[tuple] = None

    def worker_name(self, index: int) -> str:
        """The fleet-unique name of worker ``index``."""
        return f"{self.name_prefix}-{index}"

    def spawn(self, host: str, port: int, index: int):
        """Start one worker process stamped from this spec."""
        proc = _CTX.Process(
            target=_worker_process_main,
            args=(
                host,
                port,
                self.worker_name(index),
                self.give_up_after,
                list(self.chaos_events) if self.chaos_events else None,
                self.slots,
                self.wire_codec,
            ),
            daemon=True,
        )
        proc.start()
        return proc
