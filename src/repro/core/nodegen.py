"""Lazy Node Generators — the paper's uniform tree-generation API (§4.1).

A Lazy Node Generator enumerates the children of one search-tree node,
*in heuristic order*, materialising each child only when asked.  This is
the single application-specific component of a YewPar search: skeletons
decide *when* to ask for children; generators decide *what* the children
are and in *which order* they should be tried.

The C++ interface is::

    struct NodeGenerator { bool hasNext(); Node next(); }

We keep the same two-method protocol (rather than the Python iterator
protocol) because the coordinations need ``has_next`` as a cheap,
non-consuming probe: Stack-Stealing and Budget scan the generator stack
bottom-up for the first generator that still *has* work before deciding
what to steal or spawn (Listings 3 and 4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterator
from typing import Any, Generic, TypeVar

Space = TypeVar("Space")
Node = TypeVar("Node")

__all__ = ["NodeGenerator", "IterNodeGenerator", "ListNodeGenerator", "GeneratorFactory"]


class NodeGenerator(ABC, Generic[Space, Node]):
    """Lazily enumerates the children of ``node`` in traversal order.

    Subclasses typically capture the search space and the parent node at
    construction time and materialise one child per :meth:`next` call,
    exactly like the MaxClique generator of Listing 1.
    """

    @abstractmethod
    def has_next(self) -> bool:
        """True if at least one more child remains."""

    @abstractmethod
    def next(self) -> Node:
        """The next child; only valid when :meth:`has_next` is True."""

    def drain(self) -> list[Node]:
        """All remaining children, eagerly.  Used when a coordination
        spawns every remaining sibling at once ((spawn-budget), and
        chunked Stack-Stealing)."""
        out = []
        while self.has_next():
            out.append(self.next())
        return out

    def __iter__(self) -> Iterator[Node]:
        while self.has_next():
            yield self.next()


class IterNodeGenerator(NodeGenerator[Any, Node]):
    """Adapts a Python iterator/generator to the NodeGenerator protocol.

    Python generator functions are the natural way to write lazy child
    enumerations (``yield`` one child at a time); this adapter adds the
    non-consuming ``has_next`` probe by buffering one lookahead element.
    """

    __slots__ = ("_it", "_buffered", "_buffer")

    def __init__(self, iterator: Iterator[Node]) -> None:
        self._it = iter(iterator)
        self._buffered = False
        self._buffer: Node | None = None

    def has_next(self) -> bool:
        if self._buffered:
            return True
        try:
            self._buffer = next(self._it)
        except StopIteration:
            return False
        self._buffered = True
        return True

    def next(self) -> Node:
        if not self.has_next():
            raise StopIteration("generator exhausted")
        self._buffered = False
        out = self._buffer
        self._buffer = None
        return out  # type: ignore[return-value]


class ListNodeGenerator(NodeGenerator[Any, Node]):
    """A generator over a pre-computed child list.

    Useful for tests and for applications whose child computation is a
    single vectorised pass (laziness buys nothing there); still presents
    the uniform protocol.
    """

    __slots__ = ("_children", "_pos")

    def __init__(self, children: list[Node]) -> None:
        self._children = children
        self._pos = 0

    def has_next(self) -> bool:
        return self._pos < len(self._children)

    def next(self) -> Node:
        if not self.has_next():
            raise StopIteration("generator exhausted")
        child = self._children[self._pos]
        self._pos += 1
        return child


# An application supplies a factory: (space, parent) -> NodeGenerator.
GeneratorFactory = Callable[[Space, Node], NodeGenerator[Space, Node]]
