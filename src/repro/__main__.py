"""``python -m repro`` runs the YewPar-artifact-style CLI."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
