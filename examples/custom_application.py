#!/usr/bin/env python
"""Composing a brand-new search application (Appendix A.3's claim).

The paper argues any backtracking search becomes a parallel application
by writing one Lazy Node Generator.  This example does it from scratch
for a problem the library does not ship: **N-Queens**.

- Enumeration: count all solutions (92 for N=8).
- Decision: find one placement of N queens.

No coordination code is written — the generator composes with all 12
skeletons unchanged.

Run:  python examples/custom_application.py [N]
"""

import sys
from dataclasses import dataclass

from repro import SkeletonParams, search
from repro.core.nodegen import IterNodeGenerator
from repro.core.space import SearchSpec

KNOWN_SOLUTION_COUNTS = {4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352}


@dataclass(frozen=True, slots=True)
class QueensNode:
    """Queens placed in rows 0..len(cols)-1; bitsets track attacks."""

    cols: tuple[int, ...]
    col_mask: int
    diag1: int  # "/" diagonals, shifted left each row
    diag2: int  # "\" diagonals, shifted right each row


def queens_children(n: int, node: QueensNode):
    """Lazy generator: place a queen on the next row, safe columns only."""
    row = len(node.cols)
    if row == n:
        return
    attacked = node.col_mask | node.diag1 | node.diag2
    for col in range(n):
        bit = 1 << col
        if not attacked & bit:
            yield QueensNode(
                cols=node.cols + (col,),
                col_mask=node.col_mask | bit,
                diag1=(node.diag1 | bit) << 1,
                diag2=(node.diag2 | bit) >> 1,
            )


def queens_spec(n: int) -> SearchSpec:
    return SearchSpec(
        name=f"{n}-queens",
        space=n,
        root=QueensNode(cols=(), col_mask=0, diag1=0, diag2=0),
        generator=lambda n_, node: IterNodeGenerator(queens_children(n_, node)),
        objective=lambda node: len(node.cols),
    )


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    spec = queens_spec(n)
    params = SkeletonParams(localities=1, workers_per_locality=4, d_cutoff=2)

    # Enumeration: count complete solutions.  The enumeration objective
    # h maps a node into the counting monoid: 1 for a full placement,
    # 0 for every internal node.
    from repro.core.searchtypes import Enumeration
    from repro.core.skeletons import make_skeleton

    count = make_skeleton("depthbounded", "enumeration").search(
        spec,
        params,
        stype=Enumeration(objective=lambda node: 1 if len(node.cols) == n else 0),
    )
    expected = KNOWN_SOLUTION_COUNTS.get(n)
    suffix = f" (expected {expected})" if expected is not None else ""
    print(f"{n}-queens solutions: {count.value}{suffix}")

    # Decision: find any full placement.
    dec = search(spec, skeleton="stacksteal", search_type="decision",
                 target=n, params=params)
    print(f"found a placement: {dec.found}, columns by row: {dec.node.cols}")
    print(f"decision visited {dec.metrics.nodes} nodes; "
          f"enumeration visited {count.metrics.nodes}")


if __name__ == "__main__":
    main()
