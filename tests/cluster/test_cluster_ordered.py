"""End-to-end ordered & stack-stealing cluster runs: real processes.

The ordered coordination's acceptance bar is the Replicable BnB
guarantee: same instance, same d_cutoff, ANY worker count — the same
objective, the same witness, and the same node/prune/backtrack counts,
all equal to :func:`ordered_reference_search`.  Including under a
``kill_worker`` fault plan: ordered tasks are pure functions of
``(root, bound)``, so a re-leased task re-runs bit-identically and the
death is invisible in the fingerprint.

Stack-stealing is held to the usual bars: enumeration bit-identical to
sequential (every node counted exactly once however the stack is
split), optimisation value-and-witness exact.
"""

import pytest

from repro.cluster.local import cluster_search
from repro.core.ordered import ordered_reference_search
from repro.core.results import validate_result
from repro.core.searchtypes import make_search_type
from repro.core.sequential import sequential_search
from repro.instances.library import library_spec_factory, spec_for
from repro.verify.generators import Instance, instance_spec, search_setup
from repro.verify.repetition import result_fingerprint

MAXCLIQUE_ARGS = (12, 60, 3)
UTS_ARGS = (2, 4, 9)
KNAPSACK_ARGS = (8, 5)

# Tight heartbeats for the chaos runs so a killed worker's leases
# re-issue within the test budget.
CHAOS = dict(heartbeat_interval=0.1, heartbeat_timeout=0.8)
KILL_PLAN = {
    "events": [{"kind": "kill_worker", "worker": "local-1", "at_task": 1}]
}


def _setup(family, args):
    spec, kind, kwargs = search_setup(Instance(family, tuple(args)))
    return spec, make_search_type(kind, **kwargs)


def _ordered(family, args, *, n_workers, d_cutoff=2, **kw):
    return cluster_search(
        instance_spec, (family, list(args)),
        _setup(family, args)[1],
        coordination="ordered", n_workers=n_workers, d_cutoff=d_cutoff,
        timeout=120, **kw,
    )


class TestOrderedReplicable:
    def test_fingerprint_identical_across_worker_counts(self):
        spec, stype = _setup("maxclique", MAXCLIQUE_ARGS)
        want = result_fingerprint(
            ordered_reference_search(spec, stype, d_cutoff=2), counts=True
        )
        for n in (1, 2, 4):
            res = _ordered("maxclique", MAXCLIQUE_ARGS, n_workers=n)
            assert result_fingerprint(res, counts=True) == want, n
            assert validate_result(spec, res)

    def test_repeated_runs_bit_identical(self):
        spec, stype = _setup("knapsack", KNAPSACK_ARGS)
        want = result_fingerprint(
            ordered_reference_search(spec, stype, d_cutoff=2), counts=True
        )
        prints = [
            result_fingerprint(
                _ordered("knapsack", KNAPSACK_ARGS, n_workers=2), counts=True
            )
            for _ in range(3)
        ]
        assert prints == [want] * 3

    def test_enumeration_ordered_matches_reference(self):
        spec, stype = _setup("uts", UTS_ARGS)
        ref = ordered_reference_search(spec, stype, d_cutoff=2)
        seq = sequential_search(spec, stype)
        res = _ordered("uts", UTS_ARGS, n_workers=2)
        assert res.value == ref.value == seq.value
        assert res.metrics.nodes == ref.metrics.nodes == seq.metrics.nodes

    def test_kill_worker_chaos_fingerprint_unchanged(self):
        spec, stype = _setup("maxclique", MAXCLIQUE_ARGS)
        want = result_fingerprint(
            ordered_reference_search(spec, stype, d_cutoff=2), counts=True
        )
        res = _ordered(
            "maxclique", MAXCLIQUE_ARGS, n_workers=3,
            fault_plan=KILL_PLAN, **CHAOS,
        )
        assert result_fingerprint(res, counts=True) == want
        # The kill really happened and really was survived.
        assert res.metrics.reassigned >= 1

    def test_enumeration_survives_kill_worker(self):
        # The one enumeration flow where losing a worker is sound:
        # ordered tasks re-run bit-identically, so the accumulator
        # cannot double- or under-count.
        spec, stype = _setup("uts", UTS_ARGS)
        ref = ordered_reference_search(spec, stype, d_cutoff=2)
        res = _ordered(
            "uts", UTS_ARGS, n_workers=3, fault_plan=KILL_PLAN, **CHAOS,
        )
        assert res.value == ref.value
        assert res.metrics.nodes == ref.metrics.nodes
        assert res.metrics.reassigned >= 1


class TestStackStealEndToEnd:
    def test_enumeration_bit_identical_with_real_steals(self):
        spec, tname, kwargs = spec_for("uts-bin-med")
        stype = make_search_type(tname, **kwargs)
        res = cluster_search(
            library_spec_factory, ("uts-bin-med",), stype,
            coordination="stacksteal", n_workers=3, share_poll=32,
            timeout=120,
        )
        seq = sequential_search(spec, stype)
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes
        assert res.metrics.steals > 0  # thefts actually happened
        assert res.workers == 3

    def test_optimisation_value_and_witness(self):
        spec, stype = _setup("maxclique", MAXCLIQUE_ARGS)
        res = cluster_search(
            instance_spec, ("maxclique", list(MAXCLIQUE_ARGS)), stype,
            coordination="stacksteal", n_workers=2, timeout=120,
        )
        seq = sequential_search(spec, stype)
        assert res.value == seq.value
        assert validate_result(spec, res)

    def test_unchunked_split_matches_sequential(self):
        # chunked=False steals one frame instead of half the stack —
        # the work movement differs, the answer must not.
        spec, stype = _setup("uts", UTS_ARGS)
        res = cluster_search(
            instance_spec, ("uts", list(UTS_ARGS)), stype,
            coordination="stacksteal", n_workers=2, chunked=False,
            timeout=120,
        )
        seq = sequential_search(spec, stype)
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes
