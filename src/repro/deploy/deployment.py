"""Elastic cluster deployment: a coordinator plus a self-scaling fleet.

:class:`ClusterDeployment` owns what `cluster_budget_search` wires up by
hand — an embedded :class:`~repro.cluster.coordinator.ClusterHandle`
and a set of worker subprocesses — but makes the fleet *mutable*:

- :meth:`scale` converges the fleet to an exact size, spawning workers
  stamped from the :class:`~repro.deploy.spec.WorkerSpec` or retiring
  the youngest ones through the coordinator's RETIRE drain (in-flight
  task finishes, unstarted leases are RELEASEd back and re-leased
  elsewhere — no work is lost or duplicated, see docs/deploy.md);
- :meth:`adapt` starts a background loop that polls the coordinator's
  load snapshot (plus an optional service-queue probe), feeds it to an
  :class:`~repro.deploy.adaptive.Adaptive` policy, and calls
  :meth:`scale` on the recommendation — Dask's ``cluster.adapt()``
  shape over this runtime's own signals;
- dead workers (crash, chaos kill) are reaped and, while adapting, the
  next tick's :meth:`scale` call respawns up to the recommended size,
  so the fleet self-heals at the same place it self-scales.

Scale-down always retires the *highest-indexed* non-retiring workers
first.  That determinism matters twice: the surviving fleet under
``adapt(minimum=1, ...)`` is always worker 0, and a chaos plan that
arms ``kill_on_retire`` on any index >= 1 is guaranteed its RETIRE
actually arrives when the fleet drains.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from multiprocessing import Process
from typing import Any, Callable, Optional

from repro.cluster.coordinator import ClusterHandle
from repro.cluster.faults import CoordinatorFaults
from repro.core.results import SearchResult
from repro.core.searchtypes import SearchType
from repro.deploy.adaptive import Adaptive, LoadSignals
from repro.deploy.spec import WorkerSpec
from repro.runtime.processes import graceful_stop

__all__ = ["ClusterDeployment", "elastic_budget_search"]


class ClusterDeployment:
    """A coordinator and an elastically-sized fleet of worker processes.

    Args:
        spec: template for fleet workers (default :class:`WorkerSpec`).
        handle: an already-*started* :class:`ClusterHandle` to attach
            to; by default the deployment creates and owns one (started
            immediately, closed by :meth:`close`).
        host/port, heartbeat_interval, heartbeat_timeout, wire_codec:
            forwarded to the owned coordinator (ignored when ``handle``
            is given).
        coordinator_faults: optional coordinator-side chaos hooks for
            the owned coordinator.
        metrics: optional :class:`~repro.service.metrics.ServiceMetrics`
            sink; the deployment records every spawn/retire and keeps
            the live fleet size in it.
        on_event: optional callback receiving one human-readable line
            per fleet change (the `serve` CLI prints these).
    """

    def __init__(
        self,
        spec: Optional[WorkerSpec] = None,
        *,
        handle: Optional[ClusterHandle] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 5.0,
        wire_codec: str = "binary",
        coordinator_faults: Optional[CoordinatorFaults] = None,
        metrics: Any = None,
        on_event: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.spec = spec if spec is not None else WorkerSpec()
        self._owns_handle = handle is None
        if handle is None:
            handle = ClusterHandle(
                host=host,
                port=port,
                heartbeat_interval=heartbeat_interval,
                heartbeat_timeout=heartbeat_timeout,
                wire_codec=wire_codec,
                faults=coordinator_faults,
            )
            handle.start()
        self.handle = handle
        self.metrics = metrics
        self._on_event = on_event
        self._lock = threading.RLock()
        # name -> live-ish process
        self._procs: dict[str, Process] = {}  # guarded-by: _lock
        self._retiring: set[str] = set()  # guarded-by: _lock
        self._next_index = 0  # guarded-by: _lock
        self.workers_spawned = 0  # guarded-by: _lock
        self.workers_retired = 0  # guarded-by: _lock
        self.fleet_peak = 0  # guarded-by: _lock
        # Integral of fleet size over time while adapting — the cost
        # axis of the elasticity benchmark (worker-seconds provisioned).
        self.worker_seconds = 0.0  # guarded-by: _lock
        self._adapt_thread: Optional[threading.Thread] = None
        self._adapt_stop = threading.Event()
        self._queue_depth: Optional[Callable[[], int]] = None
        self.policy: Optional[Adaptive] = None
        self._closed = False  # guarded-by: _lock

    # -- introspection -------------------------------------------------------

    def _event(self, line: str) -> None:
        if self._on_event is not None:
            try:
                self._on_event(line)
            except Exception:
                pass

    def fleet_size(self) -> int:
        """Live worker processes, including those draining out."""
        with self._lock:
            self._reap()
            return len(self._procs)

    def active_size(self) -> int:
        """Live worker processes that are not retiring — the number
        :meth:`scale` converges toward."""
        with self._lock:
            self._reap()
            return len(self._procs) - len(self._retiring & set(self._procs))

    def worker_names(self) -> list[str]:
        """Names of the live workers, oldest (lowest index) first."""
        with self._lock:
            self._reap()
            return sorted(self._procs, key=self._index_of)

    def _index_of(self, name: str) -> int:
        try:
            return int(name.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return -1

    def signals(self) -> LoadSignals:
        """One :class:`LoadSignals` snapshot from the coordinator (and
        the service-queue probe, when :meth:`adapt` was given one)."""
        stats = self.handle.load_stats()
        depth = 0
        if self._queue_depth is not None:
            try:
                depth = int(self._queue_depth())
            except Exception:
                depth = 0
        return LoadSignals(
            queued_tasks=int(stats.get("queued_tasks", 0)),
            leased_tasks=int(stats.get("leased_tasks", 0)),
            service_queue_depth=depth,
            job_active=bool(stats.get("job_active", False)),
        )

    # -- fleet mutation ------------------------------------------------------

    def _reap(self) -> None:  # repro: holds[_lock]
        """Collect exited worker processes (lock held by caller)."""
        for name, proc in list(self._procs.items()):
            if proc.is_alive():
                continue
            del self._procs[name]
            was_retiring = name in self._retiring
            self._retiring.discard(name)
            if was_retiring:
                self.workers_retired += 1
                if self.metrics is not None:
                    self.metrics.worker_retired()
                self._event(f"retired {name} (exit {proc.exitcode})")
            else:
                self._event(f"worker {name} died (exit {proc.exitcode})")
        self._record_fleet()

    def _record_fleet(self) -> None:  # repro: holds[_lock]
        size = len(self._procs)
        self.fleet_peak = max(self.fleet_peak, size)
        if self.metrics is not None:
            self.metrics.set_fleet_size(size)

    def _spawn_one(self) -> str:  # repro: holds[_lock]
        host, port = self.handle.address
        index = self._next_index
        self._next_index += 1
        name = self.spec.worker_name(index)
        self._procs[name] = self.spec.spawn(host, port, index)
        self.workers_spawned += 1
        if self.metrics is not None:
            self.metrics.worker_spawned()
        self._record_fleet()
        self._event(f"spawned {name}")
        return name

    def _retire_one(self, name: str) -> None:  # repro: holds[_lock]
        self._retiring.add(name)
        if not self.handle.retire_worker(name):
            # Not connected (still starting up, or mid-reconnect): it
            # holds no leases, so a plain terminate loses nothing.
            proc = self._procs.get(name)
            if proc is not None:
                graceful_stop(proc, grace=1.0)
        self._event(f"retiring {name}")

    def scale(self, n: int) -> None:
        """Converge the non-retiring fleet to exactly ``n`` workers.

        Spawns missing workers, or RETIREs the highest-indexed surplus
        ones (they drain: finish the in-flight task, hand unstarted
        leases back, exit).  Retiring workers stop counting immediately,
        so repeated calls are idempotent while a drain is in progress.
        """
        n = max(0, int(n))
        with self._lock:
            if self._closed:
                return
            self._reap()
            active = [
                name for name in self._procs if name not in self._retiring
            ]
            if len(active) < n:
                for _ in range(n - len(active)):
                    self._spawn_one()
            elif len(active) > n:
                # Youngest first: survivors are always the oldest
                # (lowest-index) workers, which keeps retire targeting
                # deterministic for tests and chaos plans.
                victims = sorted(active, key=self._index_of, reverse=True)
                for name in victims[: len(active) - n]:
                    self._retire_one(name)

    def scale_up(self, k: int = 1) -> None:
        """Grow the non-retiring fleet by ``k`` workers."""
        self.scale(self.active_size() + max(0, int(k)))

    def scale_down(self, k: int = 1) -> None:
        """Drain the ``k`` youngest non-retiring workers (floor 0)."""
        self.scale(self.active_size() - max(0, int(k)))

    def wait_for_workers(self, n: int, timeout: Optional[float] = None) -> None:
        """Block until ``n`` workers are *connected* to the coordinator."""
        self.handle.wait_for_workers(n, timeout=timeout)

    def wait_for_fleet(
        self, n: int, timeout: float = 20.0, *, poll: float = 0.05
    ) -> None:
        """Block until exactly ``n`` worker processes are alive (unlike
        :meth:`wait_for_workers` this also observes drains completing)."""
        deadline = time.monotonic() + timeout
        while True:
            size = self.fleet_size()
            if size == n:
                return
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"fleet is {size} workers, wanted {n}, "
                    f"after {timeout:.1f}s"
                )
            time.sleep(poll)

    # -- adaptive loop -------------------------------------------------------

    def adapt(
        self,
        minimum: int = 1,
        maximum: int = 4,
        *,
        interval: float = 0.25,
        policy: Optional[Adaptive] = None,
        queue_depth: Optional[Callable[[], int]] = None,
    ) -> Adaptive:
        """Start following demand between ``minimum`` and ``maximum``.

        A daemon thread polls :meth:`signals` every ``interval``
        seconds, asks the policy for a target and converges with
        :meth:`scale` — which also respawns crashed workers up to the
        target, so adapting fleets self-heal.  ``queue_depth`` is an
        optional zero-argument probe (e.g. a service
        ``JobQueue.depth``) added to the demand signal.  Returns the
        policy in use; idempotent-ish: calling again replaces the loop.
        """
        self.stop_adapting()
        if policy is None:
            policy = Adaptive(minimum, maximum)
        self.policy = policy
        self._queue_depth = queue_depth
        self._adapt_stop = threading.Event()
        stop = self._adapt_stop

        def _loop() -> None:
            last = time.monotonic()
            # Converge to the floor immediately so a fresh deployment
            # has workers before the first job arrives.
            try:
                self.scale(policy.recommend(self.signals(), last))
            except Exception:
                pass
            while not stop.wait(interval):
                now = time.monotonic()
                try:
                    live = self.fleet_size()
                    with self._lock:
                        self.worker_seconds += live * (now - last)
                    last = now
                    self.scale(policy.recommend(self.signals(), now))
                except Exception:
                    # The coordinator may be mid-shutdown; the loop is
                    # best-effort and the next tick retries.
                    last = now
                    continue

        self._adapt_thread = threading.Thread(
            target=_loop, name="deploy-adapt", daemon=True
        )
        self._adapt_thread.start()
        return policy

    def stop_adapting(self) -> None:
        """Stop the adapt loop (fleet stays at its current size)."""
        if self._adapt_thread is not None:
            self._adapt_stop.set()
            self._adapt_thread.join(timeout=5.0)
            self._adapt_thread = None

    # -- job passthrough -----------------------------------------------------

    def run_job(
        self, payload: dict, *, timeout: Optional[float] = None
    ) -> SearchResult:
        """Run one job on the owned coordinator (blocking)."""
        return self.handle.run_job(payload, timeout=timeout)

    def run_job_future(self, payload: dict, *, timeout: Optional[float] = None):
        """Submit one job to the owned coordinator; returns a future."""
        return self.handle.run_job_future(payload, timeout=timeout)

    # -- teardown ------------------------------------------------------------

    def close(self, *, timeout: float = 10.0) -> None:
        """Stop adapting, drain the fleet and (if owned) the handle."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.stop_adapting()
        if self._owns_handle:
            self.handle.shutdown(drain_workers=True, timeout=timeout)
        with self._lock:
            for proc in self._procs.values():
                proc.join(timeout=3.0)
                graceful_stop(proc, grace=1.0)
            self._procs.clear()
            self._retiring.clear()
            self._record_fleet()

    def __enter__(self) -> "ClusterDeployment":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def elastic_budget_search(
    spec_factory: Callable[..., Any],
    factory_args: tuple,
    stype: SearchType,
    *,
    coordination: str = "budget",
    minimum: int = 1,
    maximum: int = 4,
    budget: int = 1000,
    share_poll: int = 64,
    d_cutoff: int = 2,
    chunked: bool = True,
    timeout: Optional[float] = None,
    heartbeat_interval: float = 0.5,
    heartbeat_timeout: float = 5.0,
    worker_join_timeout: float = 20.0,
    burst_hold: float = 0.4,
    wire_codec: str = "binary",
    fault_plan: Optional[dict] = None,
) -> SearchResult:
    """Budget search on a deployment that scales mid-job.

    The elastic twin of
    :func:`repro.cluster.local.cluster_budget_search`, and the unit the
    conformance harness sweeps: start at ``minimum`` workers, burst to
    ``maximum`` once the job is submitted, hold for ``burst_hold``
    seconds so the extra workers take leases, then scale back down to
    ``minimum`` *while the job runs* — forcing the RETIRE drain (and,
    under a ``kill_on_retire`` chaos plan, the crash-during-drain
    path) on every call.  The result must be bit-identical to the
    sequential oracle regardless.

    Chaos workers are named ``deploy-0 .. deploy-{maximum-1}``; the
    scale-down retires every index >= ``minimum``, so plans targeting
    those indices always fire.

    ``coordination`` routes the job's work movement (``"budget"``,
    ``"stacksteal"`` or ``"ordered"``) — despite the historical name,
    any cluster coordination can run elastically.
    """
    from repro.cluster.local import job_payload

    if minimum < 1:
        raise ValueError("need at least one elastic worker")
    if maximum < minimum:
        raise ValueError("maximum must be >= minimum")
    payload = job_payload(
        spec_factory, factory_args, stype,
        coordination=coordination, budget=budget, share_poll=share_poll,
        d_cutoff=d_cutoff, chunked=chunked,
    )
    events = list((fault_plan or {}).get("events", []))
    spec = WorkerSpec(
        name_prefix="deploy",
        slots=2,  # prefetch one: retiring workers hold leases to hand back
        give_up_after=15.0,
        wire_codec=wire_codec,
        chaos_events=tuple(events) if events else None,
    )
    dep = ClusterDeployment(
        spec,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        wire_codec=wire_codec,
        coordinator_faults=CoordinatorFaults(events) if events else None,
    )
    try:
        dep.scale(minimum)
        dep.wait_for_workers(minimum, timeout=worker_join_timeout)
        future = dep.run_job_future(payload, timeout=timeout)
        # Burst: grow to the ceiling while the job is in flight.  The
        # job may finish before every new worker even connects — that
        # is normal elasticity, not an error.
        dep.scale(maximum)
        if burst_hold > 0:
            done = False
            try:
                future.result(timeout=burst_hold)
                done = True
            except (concurrent.futures.TimeoutError, TimeoutError):
                pass
            except Exception:
                done = True  # job failed; fall through to .result() below
            if not done:
                # Mid-job scale-down: surplus workers drain through the
                # RETIRE/RELEASE protocol while work is still live.
                dep.scale(minimum)
        wait = None
        if timeout is not None:
            wait = timeout + heartbeat_timeout + 10.0
        return future.result(timeout=wait)
    finally:
        dep.close()
