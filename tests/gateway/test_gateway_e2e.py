"""Gateway acceptance over real sockets (ISSUE 8 acceptance criteria).

Every test here talks HTTP to a listening gateway through
:class:`GatewayClient` — submission, streaming, result retrieval,
backpressure and drain are exercised exactly as a remote client would,
with scripted backends keeping execution instant and controllable.
"""

import threading
import time

import pytest

from repro.core.results import SearchResult
from repro.gateway import (
    Backpressure,
    Gateway,
    GatewayClient,
    GatewayError,
    GatewayHandle,
    ShardRouter,
)

INSTANCES = ["brock90-1", "brock90-2", "brock100-1", "brock100-2",
             "brock110-1", "brock120-1", "sanr90-1", "p_hat90-1"]


def spec_json(instance="brock90-1", **kw):
    return {"app": "maxclique", "instance": instance, **kw}


class InstantBackend:
    """Executes immediately, counting runs."""

    def __init__(self):
        self.executed = []

    def execute(self, job, *, deadline=None, cancel=None):
        self.executed.append(job.id)
        if job.on_incumbent is not None:
            job.on_incumbent(5)
            job.on_incumbent(9)
        return SearchResult(kind="optimisation", value=9, node=("w",))


class GatedBackend(InstantBackend):
    """Blocks every execution until ``release`` is set."""

    def __init__(self):
        super().__init__()
        self.started = threading.Event()
        self.release = threading.Event()

    def execute(self, job, *, deadline=None, cancel=None):
        self.started.set()
        assert self.release.wait(timeout=30), "gate never released"
        return super().execute(job, deadline=deadline, cancel=cancel)


def make_gateway(n_shards=2, backend_cls=InstantBackend, **router_kw):
    """A listening gateway + client + the per-shard backends."""
    backends = {}

    def factory(i):
        backends[i] = backend_cls()
        return backends[i]

    router_kw.setdefault("pool", 1)
    router = ShardRouter(n_shards, backend_factory=factory, **router_kw)
    handle = GatewayHandle(
        Gateway(router, port=0, retry_after=0.05, stream_ping=0.25)
    )
    handle.start()
    return handle, GatewayClient(handle.url, timeout=15.0), backends


class TestHappyPath:
    def test_submit_stream_result_and_dedup_counters(self):
        handle, client, backends = make_gateway()
        try:
            record = client.submit(spec_json())
            assert record["state"] in ("PENDING", "RUNNING", "DONE")
            shard = record["shard"]

            events = [e["event"] for e in client.events(record["job"])]
            assert events[0] == "queued"
            assert "leased" in events
            assert events[-1] == "done"
            assert "incumbent" in events

            status, body = client.result(record["job"])
            assert status == 200
            assert body["result"]["value"] == 9
            assert body["result"]["kind"] == "optimisation"

            # A duplicate from another client coalesces/caches: same
            # shard, a second result, still exactly one execution.
            dup = client.submit(spec_json(submitter="other"))
            assert dup["shard"] == shard
            assert dup["state"] == "DONE"
            assert dup["from_cache"] is True

            metrics = client.metrics()
            executed = sum(
                v for (name, _), v in metrics.items()
                if name == "repro_jobs_executed_total"
            )
            submitted = sum(
                v for (name, _), v in metrics.items()
                if name == "repro_jobs_submitted_total"
            )
            hits = sum(
                v for (name, _), v in metrics.items()
                if name == "repro_cache_hits_total"
            )
            assert executed == 1  # the dedup witness, scraped over HTTP
            assert submitted == 2
            assert hits == 1
            total_runs = sum(len(b.executed) for b in backends.values())
            assert total_runs == 1
        finally:
            handle.close()

    def test_independent_jobs_fan_out_across_shards(self):
        handle, client, backends = make_gateway(n_shards=4)
        try:
            shards = {
                client.submit(spec_json(i))["shard"] for i in INSTANCES
            }
            assert len(shards) > 1
        finally:
            handle.close()

    def test_job_record_and_health(self):
        handle, client, _ = make_gateway()
        try:
            record = client.submit(spec_json())
            client.wait(record["job"])
            final = client.job(record["job"])
            assert final["state"] == "DONE"
            assert final["value"] == 9
            assert final["latency"] >= 0
            assert client.health() == {"status": "ok", "shards": 2}
        finally:
            handle.close()

    def test_stream_follows_a_live_job(self):
        handle, client, backends = make_gateway(n_shards=1,
                                                backend_cls=GatedBackend)
        try:
            record = client.submit(spec_json())
            assert backends[0].started.wait(5)
            seen = []
            stream = client.events(record["job"], timeout=10)
            for event in stream:
                seen.append(event["event"])
                if event["event"] == "leased":
                    break
            assert seen == ["queued", "leased"]  # mid-run, job still gated
            backends[0].release.set()
            rest = [e["event"] for e in stream]
            assert rest[-1] == "done"
        finally:
            backends[0].release.set()
            handle.close()


class TestErrors:
    def test_unknown_job_is_404(self):
        handle, client, _ = make_gateway()
        try:
            with pytest.raises(GatewayError) as err:
                client.job("s0-j9999")
            assert err.value.status == 404
            with pytest.raises(GatewayError) as err:
                client.job("garbage")
            assert err.value.status == 404
        finally:
            handle.close()

    def test_invalid_spec_is_400(self):
        handle, client, _ = make_gateway()
        try:
            with pytest.raises(GatewayError) as err:
                client.submit({"app": "maxclique", "instance": "atlantis-9"})
            assert err.value.status == 400
            with pytest.raises(GatewayError) as err:
                client.submit({"nonsense": True})
            assert err.value.status == 400
        finally:
            handle.close()

    def test_result_is_202_while_running(self):
        handle, client, backends = make_gateway(n_shards=1,
                                                backend_cls=GatedBackend)
        try:
            record = client.submit(spec_json())
            assert backends[0].started.wait(5)
            status, body = client.result(record["job"])
            assert status == 202
            assert body["state"] == "RUNNING"
            backends[0].release.set()
            client.wait(record["job"])
            status, _ = client.result(record["job"])
            assert status == 200
        finally:
            backends[0].release.set()
            handle.close()

    def test_wrong_method_is_405(self):
        handle, client, _ = make_gateway()
        try:
            with pytest.raises(GatewayError) as err:
                client._raise_for(*_request_raw(client, "POST", "/metrics"))
            assert err.value.status == 405
        finally:
            handle.close()


def _request_raw(client, method, path):
    status, headers, body = client._request(method, path)
    return status, headers, body


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self):
        # Capacity: one running (pool=1) + one queued (queue_depth=1).
        handle, client, backends = make_gateway(
            n_shards=1, backend_cls=GatedBackend, queue_depth=1
        )
        gate = backends[0]
        try:
            first = client.submit(spec_json(INSTANCES[0]))
            assert gate.started.wait(5)          # worker busy on job 1
            client.submit(spec_json(INSTANCES[1]))  # fills the queue

            with pytest.raises(Backpressure) as err:
                client.submit(spec_json(INSTANCES[2]))
            assert err.value.status == 429
            assert err.value.retry_after == pytest.approx(0.05)
            assert "rejected" in str(err.value)
        finally:
            gate.release.set()
            handle.close()

    def test_concurrent_submitters_all_see_429_then_all_complete(self):
        handle, client, backends = make_gateway(
            n_shards=1, backend_cls=GatedBackend, queue_depth=1
        )
        gate = backends[0]
        try:
            client.submit(spec_json(INSTANCES[0]))
            assert gate.started.wait(5)
            client.submit(spec_json(INSTANCES[1]))

            # Four clients hammer the full gateway concurrently: every
            # one gets a clean 429 (no hangs, no starvation)...
            outcomes = {}

            def hammer(idx):
                c = GatewayClient(handle.url, timeout=15.0)
                try:
                    c.submit(spec_json(INSTANCES[2 + idx],
                                       submitter=f"client-{idx}"))
                    outcomes[idx] = "accepted"
                except Backpressure as bp:
                    outcomes[idx] = bp.retry_after
                except Exception as exc:  # pragma: no cover - diagnostics
                    outcomes[idx] = repr(exc)

            threads = [threading.Thread(target=hammer, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=15)
            assert all(v == pytest.approx(0.05) for v in outcomes.values()), (
                outcomes
            )

            # ...and once capacity frees up, honest pacing gets every
            # rejected submitter through — nobody is starved.
            gate.release.set()
            done = {}

            def paced(idx):
                c = GatewayClient(handle.url, timeout=15.0)
                record = c.submit_paced(
                    spec_json(INSTANCES[2 + idx], submitter=f"client-{idx}"),
                    attempts=100,
                )
                done[idx] = c.wait(record["job"])["state"]

            threads = [threading.Thread(target=paced, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert done == {0: "DONE", 1: "DONE", 2: "DONE", 3: "DONE"}

            metrics = client.metrics()
            rejected = metrics[("repro_jobs_rejected_total", (("shard", "0"),))]
            assert rejected >= 4
        finally:
            gate.release.set()
            handle.close()

    def test_per_submitter_quota_does_not_starve_others(self):
        handle, client, backends = make_gateway(
            n_shards=1, backend_cls=GatedBackend, queue_depth=8,
            per_submitter=1,
        )
        gate = backends[0]
        try:
            client.submit(spec_json(INSTANCES[0], submitter="greedy"))
            assert gate.started.wait(5)
            client.submit(spec_json(INSTANCES[1], submitter="greedy"))
            with pytest.raises(Backpressure):  # greedy hit their quota
                client.submit(spec_json(INSTANCES[2], submitter="greedy"))
            # another submitter still gets in
            record = client.submit(spec_json(INSTANCES[3], submitter="polite"))
            assert record["state"] in ("PENDING", "RUNNING")
        finally:
            gate.release.set()
            handle.close()


class TestDrain:
    def test_drain_finishes_in_flight_and_rejects_new(self):
        handle, client, backends = make_gateway(n_shards=1,
                                                backend_cls=GatedBackend)
        gate = backends[0]
        try:
            record = client.submit(spec_json(INSTANCES[0]))
            assert gate.started.wait(5)

            drained = threading.Event()

            def drain():
                handle.drain()
                drained.set()

            t = threading.Thread(target=drain)
            t.start()
            # The drain blocks on the in-flight job...
            time.sleep(0.2)
            assert not drained.is_set()
            assert client.health()["status"] == "draining"
            with pytest.raises(Backpressure) as err:
                client.submit(spec_json(INSTANCES[1]))
            assert err.value.status == 503
            # ...releases once it completes (the listener closes with
            # the drain, so the final check reads the router directly)...
            gate.release.set()
            t.join(timeout=15)
            assert drained.is_set()
            # ...and the job really finished (not killed mid-run).
            _, job = handle.gateway.router.job(record["job"])
            assert job.state.value == "DONE"
        finally:
            gate.release.set()
            handle.close()

    def test_drain_cancels_queued_jobs_so_streams_terminate(self):
        handle, client, backends = make_gateway(
            n_shards=1, backend_cls=GatedBackend, queue_depth=4
        )
        gate = backends[0]
        router = handle.gateway.router
        broker = router.broker
        try:
            running = client.submit(spec_json(INSTANCES[0]))
            assert gate.started.wait(5)
            queued = client.submit(spec_json(INSTANCES[1]))

            # Drain with the in-flight job still gated: the queued job
            # must be cancelled immediately (its stream terminates), the
            # running one finishes after release.
            t = threading.Thread(target=handle.drain)
            t.start()
            deadline = time.monotonic() + 5
            while not broker.closed(queued["job"]):
                assert time.monotonic() < deadline, "queued job never ended"
                time.sleep(0.01)
            gate.release.set()
            t.join(timeout=15)

            _, cancelled = router.job(queued["job"])
            assert cancelled.state.value == "CANCELLED"
            assert "shutting down" in cancelled.error
            _, done = router.job(running["job"])
            assert done.state.value == "DONE"
            assert [e["event"] for e in broker.history(queued["job"])][-1] == (
                "cancelled"
            )
        finally:
            gate.release.set()
            handle.close()
