"""EventBroker: replay + live fan-out, bounded retention, thread safety."""

import asyncio
import threading

import pytest

from repro.gateway.events import TERMINAL_EVENTS, EventBroker


async def collect(broker, job_id, *, limit=100, poll_timeout=None):
    """Drain a subscription into a list (bounded, for tests)."""
    out = []
    async for record in broker.subscribe(job_id, poll_timeout=poll_timeout):
        out.append(record)
        if len(out) >= limit:
            break
    return out


class TestHistory:
    def test_publish_records_in_order_with_payload(self):
        b = EventBroker(clock=lambda: 123.0)
        b.publish("j1", "queued", queue_depth=1)
        b.publish("j1", "leased", worker="w0")
        events = b.history("j1")
        assert [e["event"] for e in events] == ["queued", "leased"]
        assert events[0] == {
            "job": "j1", "event": "queued", "ts": 123.0, "queue_depth": 1,
        }

    def test_unknown_job_has_empty_history(self):
        assert EventBroker().history("nope") == []

    def test_terminal_event_closes_the_log(self):
        b = EventBroker()
        b.publish("j1", "queued")
        b.publish("j1", "done", value=7)
        assert b.closed("j1")
        b.publish("j1", "incumbent", value=9)  # post-terminal noise
        assert [e["event"] for e in b.history("j1")] == ["queued", "done"]

    def test_history_cap_drops_oldest_with_marker(self):
        b = EventBroker(history_limit=8)
        b.publish("j1", "queued")
        for i in range(20):
            b.publish("j1", "incumbent", value=i)
        events = b.history("j1")
        assert len(events) == 8
        assert events[0]["event"] == "dropped"
        # 21 published, 7 real events kept -> 14 dropped, counted exactly
        assert events[0]["count"] == 14
        assert [e.get("value") for e in events[1:]] == list(range(13, 20))

    def test_eviction_retires_oldest_terminal_logs_only(self):
        b = EventBroker(max_jobs=2)
        b.publish("j1", "done")
        b.publish("j2", "queued")       # live: never evicted
        b.publish("j3", "done")
        assert len(b) == 2
        assert b.history("j1") == []    # oldest terminal log went first
        assert b.history("j2") != []
        assert b.history("j3") != []


class TestSubscribe:
    def test_replay_then_terminal_ends_stream(self):
        b = EventBroker()
        b.publish("j1", "queued")
        b.publish("j1", "done", value=3)
        events = asyncio.run(collect(b, "j1"))
        assert [e["event"] for e in events] == ["queued", "done"]

    def test_live_events_reach_a_waiting_subscriber(self):
        b = EventBroker()
        b.publish("j1", "queued")

        async def run():
            gen = collect(b, "j1")
            task = asyncio.ensure_future(gen)
            await asyncio.sleep(0.05)
            # published from a foreign thread, like a scheduler worker
            t = threading.Thread(target=lambda: (
                b.publish("j1", "leased"),
                b.publish("j1", "done"),
            ))
            t.start()
            t.join()
            return await asyncio.wait_for(task, 5)

        events = asyncio.run(run())
        assert [e["event"] for e in events] == ["queued", "leased", "done"]

    def test_ping_fills_silent_gaps(self):
        b = EventBroker()
        b.publish("j1", "queued")

        async def run():
            out = []
            async for record in b.subscribe("j1", poll_timeout=0.02):
                out.append(record["event"])
                if len(out) == 3:
                    break
            return out

        events = asyncio.run(run())
        assert events == ["queued", "ping", "ping"]

    def test_subscriber_list_is_cleaned_up(self):
        b = EventBroker()
        b.publish("j1", "queued")
        b.publish("j1", "done")
        asyncio.run(collect(b, "j1"))
        assert b._logs["j1"].subscribers == []

    def test_concurrent_threaded_publish_is_not_lost(self):
        b = EventBroker(history_limit=4096)
        threads = [
            threading.Thread(
                target=lambda t=t: [
                    b.publish("j1", "incumbent", value=t * 100 + i)
                    for i in range(100)
                ]
            )
            for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        b.publish("j1", "done")
        events = b.history("j1")
        assert len(events) == 401
        assert events[-1]["event"] == "done"


class TestVocabulary:
    def test_terminal_events_mirror_job_states(self):
        from repro.service.jobs import TERMINAL_STATES

        assert TERMINAL_EVENTS == {s.value.lower() for s in TERMINAL_STATES}

    def test_bounds_are_validated(self):
        with pytest.raises(ValueError):
            EventBroker(history_limit=2)
        with pytest.raises(ValueError):
            EventBroker(max_jobs=0)
