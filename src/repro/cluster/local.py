"""Self-contained localhost clusters: one call, N worker processes.

``cluster_search`` is the cluster counterpart of the
``multiprocessing_*_search`` family in
:mod:`repro.runtime.processes`: same arguments, same result contract,
but the work movement (budget offcuts, stack-steal splits, or ordered
fixed-bound leases) happens over real TCP sockets through an embedded
coordinator instead of through ``multiprocessing`` queues.  It exists
so the ``backend="cluster"`` skeleton route, the tests and the scaling
benchmark can exercise the genuine wire path without shell
choreography.

The topology it builds::

    this process ── ClusterHandle (coordinator on a loop thread)
         │                 ▲ TCP (127.0.0.1, ephemeral port)
         └─ fork ──► worker process 1..N (ClusterWorker each)

Workers are stopped with a SHUTDOWN drain first and the
SIGTERM -> SIGKILL escalation as the backstop.
"""

from __future__ import annotations

from multiprocessing import Process
from typing import Any, Callable, Optional

from repro.cluster import protocol as P
from repro.cluster.coordinator import ClusterHandle
from repro.cluster.faults import CoordinatorFaults
from repro.cluster.worker import _worker_process_main
from repro.core.params import SkeletonParams
from repro.core.results import SearchResult
from repro.core.searchtypes import SearchType
from repro.runtime.processes import _stype_payload, graceful_stop

__all__ = [
    "job_payload",
    "cluster_search",
    "cluster_budget_search",
    "run_with_cluster",
]

CLUSTER_COORDINATIONS = ("budget", "stacksteal", "ordered")


def job_payload(
    spec_factory: Callable[..., Any],
    factory_args: tuple,
    stype: SearchType,
    *,
    coordination: str = "budget",
    budget: int = 1000,
    share_poll: int = 64,
    d_cutoff: int = 2,
    chunked: bool = True,
) -> dict:
    """Build the wire job definition for a search.

    The spec travels as an importable factory path plus plain arguments
    (pickling-free; every node rebuilds the spec locally), the search
    type as its ``(kind, kwargs)`` reduction — so the same stock-type
    restriction as the multiprocessing backend applies, with the same
    loud ValueError for custom types.  ``coordination`` picks the work
    movement: ``"budget"`` (offcut splits), ``"stacksteal"``
    (coordinator-mediated STEAL/STOLEN), or ``"ordered"`` (replicable
    fixed-bound tasks finalised by the coordinator's ledger).
    """
    if coordination not in CLUSTER_COORDINATIONS:
        raise ValueError(
            f"the cluster backend implements {CLUSTER_COORDINATIONS}, "
            f"not {coordination!r}"
        )
    kind, kwargs = _stype_payload(stype)
    return {
        "factory": P.factory_path(spec_factory),
        "factory_args": P.encode_node(list(factory_args)),
        "stype_kind": kind,
        "stype_kwargs": kwargs,
        "coordination": coordination,
        "budget": int(budget),
        "share_poll": int(share_poll),
        "d_cutoff": int(d_cutoff),
        "chunked": bool(chunked),
    }


def cluster_search(
    spec_factory: Callable[..., Any],
    factory_args: tuple,
    stype: SearchType,
    *,
    coordination: str = "budget",
    n_workers: int = 2,
    budget: int = 1000,
    share_poll: int = 64,
    d_cutoff: int = 2,
    chunked: bool = True,
    timeout: Optional[float] = None,
    heartbeat_interval: float = 0.5,
    heartbeat_timeout: float = 5.0,
    worker_join_timeout: float = 20.0,
    wire_codec: str = "binary",
    fault_plan: Optional[dict] = None,
) -> SearchResult:
    """One search over an embedded coordinator + N local workers.

    Spins the topology up, runs one job, drains it down.  Raises the
    coordinator's :class:`~repro.cluster.coordinator.ClusterError`
    family on timeout/failure; returns the same :class:`SearchResult`
    shape as every other backend (``metrics.reassigned`` > 0 means the
    run survived a worker failure — or, for ordered jobs, counted
    bound-mismatch re-runs).

    ``fault_plan`` is an optional chaos schedule — a dict with an
    ``events`` list (see :mod:`repro.cluster.faults`): partition events
    arm the coordinator, the rest ride into the matching worker process
    (workers are named ``local-0 .. local-{N-1}``).  Chaos runs should
    also tighten ``heartbeat_interval``/``heartbeat_timeout`` so
    re-leases happen within test budgets.
    """
    if n_workers < 1:
        raise ValueError("need at least one cluster worker")
    payload = job_payload(
        spec_factory, factory_args, stype,
        coordination=coordination, budget=budget, share_poll=share_poll,
        d_cutoff=d_cutoff, chunked=chunked,
    )
    events = list((fault_plan or {}).get("events", []))
    handle = ClusterHandle(
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        wire_codec=wire_codec,
        faults=CoordinatorFaults(events) if events else None,
    )
    procs: list[Process] = []
    try:
        host, port = handle.start()
        procs = [
            Process(
                target=_worker_process_main,
                # give_up_after bounds orphan spin if this process dies
                # before the drain: workers stop retrying on their own.
                args=(host, port, f"local-{i}", 15.0, events or None, 2,
                      wire_codec),
                daemon=True,
            )
            for i in range(n_workers)
        ]
        for p in procs:
            p.start()
        handle.wait_for_workers(n_workers, timeout=worker_join_timeout)
        return handle.run_job(payload, timeout=timeout)
    finally:
        handle.shutdown(drain_workers=True)
        for p in procs:
            p.join(timeout=3.0)
            graceful_stop(p, grace=1.0)


def cluster_budget_search(
    spec_factory: Callable[..., Any],
    factory_args: tuple,
    stype: SearchType,
    **kwargs: Any,
) -> SearchResult:
    """Budget search over an embedded cluster (compatibility wrapper
    around :func:`cluster_search` with ``coordination="budget"``)."""
    return cluster_search(
        spec_factory, factory_args, stype, coordination="budget", **kwargs
    )


def run_with_cluster(
    coordination: str,
    spec_factory: Callable[..., Any],
    factory_args: tuple,
    stype: SearchType,
    params: SkeletonParams,
) -> SearchResult:
    """Dispatch a skeleton run onto a localhost cluster.

    Entry point for ``SkeletonParams(backend="cluster")``: the budget,
    stacksteal and ordered coordinations move (or pin) work dynamically
    enough to be worth a wire; everything else is rejected with advice
    (mirroring :func:`repro.runtime.processes.run_with_processes`).
    """
    if coordination not in CLUSTER_COORDINATIONS:
        raise ValueError(
            f"the cluster backend implements the {CLUSTER_COORDINATIONS} "
            f"coordinations, not {coordination!r}; use backend='processes' "
            "or backend='sim'"
        )
    return cluster_search(
        spec_factory,
        factory_args,
        stype,
        coordination=coordination,
        n_workers=params.cluster_workers,
        budget=params.budget,
        share_poll=params.share_poll,
        d_cutoff=params.d_cutoff,
        chunked=params.chunked,
        wire_codec=params.wire_codec,
    )
