"""Tests for materialised ordered trees and subtrees (paper §3.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.semantics.tree import OrderedTree, Subtree
from repro.semantics.words import EPSILON, is_prefix


def close_under_prefix(words):
    nodes = {EPSILON}
    for w in words:
        for i in range(len(w) + 1):
            nodes.add(w[:i])
    return nodes


random_trees = st.lists(
    st.lists(st.sampled_from("abc"), max_size=4).map(tuple), max_size=12
).map(lambda ws: OrderedTree.from_nodes(close_under_prefix(ws)))


@pytest.fixture
def tree():
    """The running example: root with children a (grandkids aa, ab) and b."""
    return OrderedTree.from_nodes(
        [EPSILON, ("a",), ("b",), ("a", "a"), ("a", "b")]
    )


class TestConstruction:
    def test_nodes(self, tree):
        assert len(tree) == 5
        assert ("a", "b") in tree

    def test_not_prefix_closed_rejected(self):
        with pytest.raises(ValueError):
            OrderedTree({("a",): [("a", "b")]})

    def test_bad_child_extension_rejected(self):
        with pytest.raises(ValueError):
            OrderedTree({EPSILON: [("a", "b")]})

    def test_duplicate_children_rejected(self):
        with pytest.raises(ValueError):
            OrderedTree({EPSILON: [("a",), ("a",)]})

    def test_singleton_tree(self):
        t = OrderedTree({})
        assert len(t) == 1
        assert EPSILON in t

    def test_children_in_sibling_order(self):
        t = OrderedTree({EPSILON: [("b",), ("a",)]})
        assert t.children(EPSILON) == (("b",), ("a",))

    def test_children_of_unknown_node_raises(self, tree):
        with pytest.raises(KeyError):
            tree.children(("z",))


class TestTraversalOrder:
    def test_preorder(self, tree):
        assert tree.preorder() == [
            EPSILON,
            ("a",),
            ("a", "a"),
            ("a", "b"),
            ("b",),
        ]

    def test_before_prefix(self, tree):
        assert tree.before(("a",), ("a", "b"))

    def test_before_sibling(self, tree):
        assert tree.before(("a", "b"), ("b",))

    def test_before_irreflexive(self, tree):
        assert not tree.before(("a",), ("a",))

    def test_respects_custom_sibling_order(self):
        t = OrderedTree({EPSILON: [("b",), ("a",)]})
        assert t.before(("b",), ("a",))

    @given(random_trees)
    def test_preorder_is_total_strict_order(self, t):
        order = t.preorder()
        for i, u in enumerate(order):
            for v in order[i + 1 :]:
                assert t.before(u, v)
                assert not t.before(v, u)

    @given(random_trees)
    def test_preorder_extends_prefix_order(self, t):
        for u in t.nodes:
            for v in t.nodes:
                if u != v and is_prefix(u, v):
                    assert t.before(u, v)


class TestSubtreeOps:
    def test_whole(self, tree):
        s = tree.whole()
        assert s.root == EPSILON
        assert len(s) == 5

    def test_next_follows_preorder(self, tree):
        s = tree.whole()
        order = tree.preorder()
        for u, v in zip(order, order[1:]):
            assert s.next(u) == v
        assert s.next(order[-1]) is None

    def test_children_filtered_to_subtree(self, tree):
        s = tree.whole().remove([("a", "b")])
        assert s.children(("a",)) == [("a", "a")]

    def test_subtree_extraction(self, tree):
        s = tree.whole().subtree(("a",))
        assert s.root == ("a",)
        assert set(s.nodes) == {("a",), ("a", "a"), ("a", "b")}

    def test_subtree_of_missing_node_raises(self, tree):
        with pytest.raises(KeyError):
            tree.whole().subtree(("z",))

    def test_succ(self, tree):
        s = tree.whole()
        assert set(s.succ(("a",))) == {("a", "a"), ("a", "b"), ("b",)}

    def test_lowest(self, tree):
        s = tree.whole()
        assert s.lowest(("a",)) == [("b",)]

    def test_lowest_among_deeper(self, tree):
        s = tree.whole().remove([("b",)])
        assert s.lowest(("a",)) == [("a", "a"), ("a", "b")]

    def test_next_lowest(self, tree):
        s = tree.whole()
        assert s.next_lowest(EPSILON) == ("a",)

    def test_next_lowest_none_at_end(self, tree):
        s = tree.whole()
        assert s.next_lowest(("b",)) is None

    def test_remove_keeps_rooted(self, tree):
        s = tree.whole()
        sub = s.subtree(("a",))
        remaining = s.remove(sub.nodes)
        assert remaining.root == EPSILON
        assert set(remaining.nodes) == {EPSILON, ("b",)}

    def test_subtree_requires_root_membership(self, tree):
        with pytest.raises(ValueError):
            Subtree(tree, ("a",), [("b",)])

    def test_subtree_requires_prefix_closure_above_root(self, tree):
        with pytest.raises(ValueError):
            Subtree(tree, EPSILON, [EPSILON, ("a", "a")])

    def test_unexplored_after(self, tree):
        s = tree.whole()
        assert s.unexplored_after(EPSILON) == 4
        assert s.unexplored_after(("b",)) == 0

    @given(random_trees)
    def test_next_chain_visits_every_node_once(self, t):
        s = t.whole()
        seen = [EPSILON]
        while (nxt := s.next(seen[-1])) is not None:
            seen.append(nxt)
        assert seen == t.preorder()

    @given(random_trees)
    def test_lowest_nodes_share_min_depth(self, t):
        s = t.whole()
        for v in t.nodes:
            low = s.lowest(v)
            if low:
                depths = {len(w) for w in low}
                assert len(depths) == 1
                succ_depths = [len(w) for w in s.succ(v)]
                assert min(succ_depths) == depths.pop()
