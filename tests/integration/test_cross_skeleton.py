"""Integration: every coordination computes the same result on every
application — the core claim behind "explore alternate parallelisations
by changing one line" (§5.5).
"""

import pytest

from repro import SkeletonParams, make_skeleton, search
from repro.apps.knapsack import knapsack_spec
from repro.apps.maxclique import maxclique_spec
from repro.apps.semigroups import GENUS_COUNTS, SemigroupInstance, semigroups_spec
from repro.apps.sip import sip_spec
from repro.apps.tsp import tsp_spec
from repro.apps.uts import UTSInstance, uts_spec
from repro.core.sequential import sequential_search
from repro.core.searchtypes import Decision, Enumeration, Optimisation
from repro.instances.graphs import planted_clique, uniform_graph
from repro.instances.library import random_knapsack, random_sip, random_tsp

# The paper's three parallel coordinations plus the two extensions.
PARALLEL = ["depthbounded", "stacksteal", "budget", "random", "ordered"]
PARAMS = SkeletonParams(
    localities=2, workers_per_locality=3, d_cutoff=2, budget=30,
    spawn_probability=0.1, seed=1,
)


@pytest.mark.parametrize("skeleton", PARALLEL)
class TestOptimisationApps:
    def test_maxclique(self, skeleton):
        spec = maxclique_spec(uniform_graph(35, 0.5, seed=2))
        seq = search(spec, search_type="optimisation")
        par = search(spec, skeleton=skeleton, search_type="optimisation", params=PARAMS)
        assert par.value == seq.value

    def test_knapsack(self, skeleton):
        spec = knapsack_spec(random_knapsack(16, 3, kind="strong", max_weight=30))
        seq = search(spec, search_type="optimisation")
        par = search(spec, skeleton=skeleton, search_type="optimisation", params=PARAMS)
        assert par.value == seq.value

    def test_tsp(self, skeleton):
        spec = tsp_spec(random_tsp(8, 4))
        seq = search(spec, search_type="optimisation")
        par = search(spec, skeleton=skeleton, search_type="optimisation", params=PARAMS)
        assert par.value == seq.value


@pytest.mark.parametrize("skeleton", PARALLEL)
class TestDecisionApps:
    def test_kclique_sat(self, skeleton):
        spec = maxclique_spec(planted_clique(30, 0.3, 8, seed=5))
        par = search(spec, skeleton=skeleton, search_type="decision", target=8, params=PARAMS)
        assert par.found is True
        assert par.value == 8

    def test_kclique_unsat(self, skeleton):
        g = uniform_graph(25, 0.4, seed=6)
        seq = search(maxclique_spec(g), search_type="decision", target=9)
        par = search(
            maxclique_spec(g), skeleton=skeleton, search_type="decision",
            target=9, params=PARAMS,
        )
        assert par.found == seq.found

    def test_sip(self, skeleton):
        inst = random_sip(7, 28, 0.3, seed=7, planted=True)
        par = search(
            sip_spec(inst), skeleton=skeleton, search_type="decision",
            target=7, params=PARAMS,
        )
        assert par.found is True


@pytest.mark.parametrize("skeleton", PARALLEL)
class TestEnumerationApps:
    def test_uts(self, skeleton):
        spec = uts_spec(UTSInstance(shape="geometric", b0=3.0, max_depth=6, seed=8))
        seq = search(spec, search_type="enumeration")
        par = search(spec, skeleton=skeleton, search_type="enumeration", params=PARAMS)
        assert par.value == seq.value

    def test_semigroups(self, skeleton):
        spec = semigroups_spec(SemigroupInstance(max_genus=9), count_genus=9)
        par = search(spec, skeleton=skeleton, search_type="enumeration", params=PARAMS)
        assert par.value == GENUS_COUNTS[9]


class TestOneLineReparallelisation:
    """Listing-5 style: the spec never changes, only the skeleton name."""

    def test_all_twelve_skeletons_run_maxclique_family(self):
        g = uniform_graph(25, 0.5, seed=9)
        spec = maxclique_spec(g)
        seq_opt = sequential_search(spec, Optimisation())
        params = SkeletonParams(localities=1, workers_per_locality=4, d_cutoff=1, budget=10)
        for coord in ["sequential", "depthbounded", "stacksteal", "budget"]:
            opt = make_skeleton(coord, "optimisation").search(spec, params)
            assert opt.value == seq_opt.value
            dec = make_skeleton(coord, "decision").search(
                spec, params, target=seq_opt.value
            )
            assert dec.found is True
            enum = make_skeleton(coord, "enumeration").search(
                maxclique_spec(uniform_graph(12, 0.5, seed=10)), params
            )
            # node count of the unpruned tree is skeleton-independent
            assert enum.value == make_skeleton("sequential", "enumeration").search(
                maxclique_spec(uniform_graph(12, 0.5, seed=10))
            ).value
