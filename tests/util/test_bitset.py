"""Unit and property tests for int-backed bitsets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitset import (
    bit_indices,
    bitset_from_iterable,
    count_bits,
    first_bit,
    highest_bit,
    mask_below,
    singleton,
    without_bit,
)

small_sets = st.frozensets(st.integers(min_value=0, max_value=200), max_size=40)


class TestConstruction:
    def test_empty(self):
        assert bitset_from_iterable([]) == 0

    def test_single(self):
        assert bitset_from_iterable([3]) == 0b1000

    def test_multiple(self):
        assert bitset_from_iterable([0, 2, 5]) == 0b100101

    def test_duplicates_collapse(self):
        assert bitset_from_iterable([1, 1, 1]) == 0b10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bitset_from_iterable([-1])

    def test_singleton(self):
        assert singleton(0) == 1
        assert singleton(7) == 128

    def test_singleton_negative_rejected(self):
        with pytest.raises(ValueError):
            singleton(-2)

    def test_mask_below(self):
        assert mask_below(0) == 0
        assert mask_below(1) == 1
        assert mask_below(4) == 0b1111

    def test_mask_below_negative_rejected(self):
        with pytest.raises(ValueError):
            mask_below(-1)


class TestQueries:
    def test_count_empty(self):
        assert count_bits(0) == 0

    def test_count(self):
        assert count_bits(0b101101) == 4

    def test_first_bit_empty(self):
        assert first_bit(0) == -1

    def test_first_bit(self):
        assert first_bit(0b101000) == 3

    def test_highest_bit_empty(self):
        assert highest_bit(0) == -1

    def test_highest_bit(self):
        assert highest_bit(0b101000) == 5

    def test_without_bit(self):
        assert without_bit(0b1110, 2) == 0b1010

    def test_without_absent_bit_is_noop(self):
        assert without_bit(0b1010, 0) == 0b1010

    def test_bit_indices_order(self):
        assert list(bit_indices(0b101101)) == [0, 2, 3, 5]

    def test_bit_indices_empty(self):
        assert list(bit_indices(0)) == []


class TestProperties:
    @given(small_sets)
    def test_roundtrip(self, s):
        assert set(bit_indices(bitset_from_iterable(s))) == set(s)

    @given(small_sets)
    def test_count_matches_cardinality(self, s):
        assert count_bits(bitset_from_iterable(s)) == len(s)

    @given(small_sets)
    def test_first_and_highest_are_min_max(self, s):
        bits = bitset_from_iterable(s)
        if s:
            assert first_bit(bits) == min(s)
            assert highest_bit(bits) == max(s)
        else:
            assert first_bit(bits) == -1

    @given(small_sets, small_sets)
    def test_intersection_is_set_intersection(self, a, b):
        bits = bitset_from_iterable(a) & bitset_from_iterable(b)
        assert set(bit_indices(bits)) == a & b

    @given(small_sets, small_sets)
    def test_union_is_set_union(self, a, b):
        bits = bitset_from_iterable(a) | bitset_from_iterable(b)
        assert set(bit_indices(bits)) == a | b

    @given(small_sets, st.integers(min_value=0, max_value=200))
    def test_without_bit_removes(self, s, i):
        bits = without_bit(bitset_from_iterable(s), i)
        assert set(bit_indices(bits)) == s - {i}

    @given(st.integers(min_value=0, max_value=300))
    def test_mask_below_contains_exactly_prefix(self, n):
        assert set(bit_indices(mask_below(n))) == set(range(n))

    @given(small_sets)
    def test_iteration_ascending(self, s):
        out = list(bit_indices(bitset_from_iterable(s)))
        assert out == sorted(out)


class TestAgainstSetReference:
    """Fixed-seed random masks checked against Python's ``set`` as the
    naive reference model — every helper, every operator, same answers.

    Complements the hypothesis properties above with a deterministic
    corpus: no example database, identical inputs on every run.
    """

    @staticmethod
    def _random_sets(seed, count, universe=130, density=3):
        from repro.util.rng import SplitMix64

        rng = SplitMix64(seed)
        out = []
        for _ in range(count):
            size = rng.randrange(universe // density)
            out.append({rng.randrange(universe) for _ in range(size)})
        return out

    def test_helpers_match_set_model(self):
        for s in self._random_sets(0xB175E7, 50):
            bits = bitset_from_iterable(s)
            assert set(bit_indices(bits)) == s
            assert count_bits(bits) == len(s)
            assert first_bit(bits) == (min(s) if s else -1)
            assert highest_bit(bits) == (max(s) if s else -1)
            assert list(bit_indices(bits)) == sorted(s)

    def test_operators_match_set_algebra(self):
        pairs = zip(
            self._random_sets(1, 40), self._random_sets(2, 40)
        )
        for a, b in pairs:
            ba, bb = bitset_from_iterable(a), bitset_from_iterable(b)
            assert set(bit_indices(ba & bb)) == (a & b)
            assert set(bit_indices(ba | bb)) == (a | b)
            assert set(bit_indices(ba ^ bb)) == (a ^ b)
            assert set(bit_indices(ba & ~bb)) == (a - b)

    def test_removal_and_singletons_match(self):
        from repro.util.rng import SplitMix64

        rng = SplitMix64(99)
        for s in self._random_sets(3, 40):
            i = rng.randrange(130)
            bits = bitset_from_iterable(s)
            assert set(bit_indices(without_bit(bits, i))) == s - {i}
            assert set(bit_indices(bits | singleton(i))) == s | {i}
            assert (bits & mask_below(i)) == bitset_from_iterable(
                {v for v in s if v < i}
            )
