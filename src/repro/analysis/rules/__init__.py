"""Rule registry for :mod:`repro.analysis`.

``all_rules()`` returns fresh instances so repeated runs never share
state; ``resolve_rules`` maps ``--rules`` CLI input to instances.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.core import Rule
from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.call_safety import CallSafetyRule
from repro.analysis.rules.factories import FactoryImportsRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.protocol_exhaustive import ProtocolExhaustiveRule

__all__ = ["RULE_CLASSES", "all_rules", "resolve_rules"]

RULE_CLASSES = (
    LockDisciplineRule,
    AsyncBlockingRule,
    ProtocolExhaustiveRule,
    FactoryImportsRule,
    CallSafetyRule,
)


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in registry order."""
    return [cls() for cls in RULE_CLASSES]


def resolve_rules(names: Optional[Sequence[str]]) -> list[Rule]:
    """Instantiate the named rules; None/empty means the full set."""
    if not names:
        return all_rules()
    by_name = {cls.name: cls for cls in RULE_CLASSES}
    rules = []
    for name in names:
        if name not in by_name:
            known = ", ".join(sorted(by_name))
            raise ValueError(f"unknown rule '{name}' (known: {known})")
        rules.append(by_name[name]())
    return rules
