"""Prometheus text exposition: escaping, rendering, parse round-trip."""

import pytest

from repro.gateway.prometheus import (
    escape_help,
    escape_label_value,
    parse_metrics,
    render_families,
    render_service,
    sample_line,
)
from repro.service.metrics import ServiceMetrics


class TestEscaping:
    def test_backslash_quote_and_newline(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_backslash_escapes_before_quote(self):
        # The order matters: escaping quotes first would double-escape.
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_help_escapes_newline_but_not_quote(self):
        assert escape_help('say "hi"\nplease') == 'say "hi"\\nplease'

    @pytest.mark.parametrize(
        "hostile",
        ['plain', 'with"quote', "with\\slash", "with\nnewline",
         'all\\three" \n at once', ""],
    )
    def test_round_trip_through_parser(self, hostile):
        text = render_families([
            ("m", "gauge", "h", [({"label": hostile}, 1.5)]),
        ])
        parsed = parse_metrics(text)
        assert parsed == {("m", (("label", hostile),)): 1.5}


class TestRendering:
    def test_sample_line_shapes(self):
        assert sample_line("up", 1) == "up 1"
        assert sample_line("x", 2.5, {"a": "b"}) == 'x{a="b"} 2.5'
        assert sample_line("b", True) == "b 1"

    def test_families_carry_help_and_type(self):
        text = render_families([
            ("repro_up", "gauge", "Is it up.", [(None, 1)]),
        ])
        assert "# HELP repro_up Is it up.\n" in text
        assert "# TYPE repro_up gauge\n" in text
        assert text.endswith("repro_up 1\n")

    def test_none_samples_and_empty_families_are_omitted(self):
        text = render_families([
            ("a", "gauge", "h", [(None, None)]),
            ("b", "gauge", "h", [(None, 1), ({"k": "v"}, None)]),
        ])
        assert "a" not in text.split()
        assert text.count("\n") == 3  # HELP + TYPE + one sample


class TestRenderService:
    def snapshot(self):
        class FakeCache:
            hits = 2
            misses = 3

        m = ServiceMetrics()
        m.job_submitted()
        m.job_executed()
        return m.snapshot(queue_depth=0, running=1, cache=FakeCache())

    def test_shard_labels_and_counters(self):
        text = render_service({"0": self.snapshot(), "1": self.snapshot()})
        parsed = parse_metrics(text)
        assert parsed[("repro_jobs_submitted_total", (("shard", "0"),))] == 1
        assert parsed[("repro_jobs_executed_total", (("shard", "1"),))] == 1
        assert parsed[("repro_cache_hits_total", (("shard", "0"),))] == 2

    def test_gateway_and_request_families(self):
        text = render_service(
            {"0": self.snapshot()},
            gateway={"shards": 2, "draining": 0, "streams_active": 1,
                     "uptime_seconds": 10.0},
            requests={("POST", 201): 4, ("GET", 200): 9},
        )
        parsed = parse_metrics(text)
        assert parsed[("repro_gateway_shards", ())] == 2
        assert parsed[
            ("repro_gateway_requests_total",
             (("code", "201"), ("method", "POST")))
        ] == 4

    def test_load_stats_families(self):
        text = render_service(
            {"0": self.snapshot()},
            load_stats={"0": {"connected": 3, "retiring": 1,
                              "job_active": True, "queued_tasks": 5,
                              "leased_tasks": 2, "outstanding": 7,
                              "reassigned": 0}},
        )
        parsed = parse_metrics(text)
        assert parsed[("repro_cluster_workers_connected", (("shard", "0"),))] == 3
        assert parsed[("repro_cluster_job_active", (("shard", "0"),))] == 1

    def test_latency_quantiles_absent_until_first_job(self):
        text = render_service({"0": self.snapshot()})
        assert "repro_job_latency_seconds" not in text


class TestParser:
    def test_unlabelled_and_special_values(self):
        parsed = parse_metrics("a 1\nb +Inf\nc NaN\n")
        assert parsed[("a", ())] == 1
        assert parsed[("b", ())] == float("inf")
        assert parsed[("c", ())] != parsed[("c", ())]  # NaN

    def test_comments_and_blanks_are_skipped(self):
        parsed = parse_metrics("# HELP a h\n# TYPE a gauge\n\na 2\n")
        assert parsed == {("a", ()): 2.0}

    def test_multiple_labels_sorted(self):
        parsed = parse_metrics('m{b="2",a="1"} 5\n')
        assert parsed == {("m", (("a", "1"), ("b", "2"))): 5.0}
