"""Wire body codecs: the JSON baseline and a compact binary format.

A *frame* on the cluster wire is a 4-byte length prefix followed by a
*body* (see :mod:`repro.cluster.protocol` for framing).  This module
owns what the body looks like.  Two codecs implement the same message
space — plain dicts with a ``"type"`` field and JSON-safe values (nodes
are pre-encoded by ``encode_node`` before they reach a codec):

- ``json`` — UTF-8 JSON, the v1 format: human-readable on the wire,
  C-accelerated, the compatibility floor every peer speaks.
- ``binary`` — struct-packed: a magic byte, a 1-byte frame-type tag, a
  varint field count, then interned-key/tagged-value pairs.  Ints are
  zigzag LEB128 varints, strings are length-prefixed UTF-8, and the
  tagged node shapes ``encode_node`` emits (``__tuple__`` / ``__set__``
  / ``__frozenset__`` lists, the base64 ``__pickle__`` fallback) get
  dedicated tags — the pickle payload travels as raw bytes, not
  base64, which is where most of the size win on application node
  classes comes from.

**Encoding is negotiated, decoding is self-describing.**  The first
body byte discriminates: a binary body always starts with ``MAGIC``
(0xB1 — an invalid leading UTF-8 byte, so no JSON text can begin with
it), anything else is parsed as JSON.  ``decode_body`` therefore
accepts either format regardless of what was negotiated, which is what
lets a handshake *itself* travel as JSON before any agreement exists:

- the worker's HELLO (always JSON) carries ``"codecs": [...]`` — the
  formats it speaks, preferred first; a v1 peer sends no such field
  and is treated as offering ``["json"]``;
- the coordinator picks via :func:`negotiate` (its own preference if
  offered, else the worker's best known offer, else JSON) and names
  the choice in the WELCOME (also always JSON) as ``"codec"``;
- every frame after the handshake, in both directions, uses the
  negotiated codec — but because decoding auto-detects, a peer that
  keeps sending JSON anyway still interoperates.

Both decoders are strict: truncated bodies, trailing bytes, unknown
tags/key codes and malformed UTF-8 all raise :class:`ProtocolError`
(defined here so the codec layer has no protocol dependency;
:mod:`repro.cluster.protocol` re-exports it).

The binary decode returns *exactly* what the JSON decode of the
equivalent message returns — ``decode_body(binary(m)) ==
decode_body(json(m))`` for every JSON-safe ``m`` — so everything
downstream (``decode_node``, lease accounting, fault injection keyed
on frame type) is codec-oblivious.  The tag tables below are
append-only: new codes may be added, existing codes never renumbered.
"""

from __future__ import annotations

import base64
import binascii
import json
import struct
from typing import Any, Optional

__all__ = [
    "ProtocolError",
    "MAGIC",
    "WireCodec",
    "JSON_CODEC",
    "BINARY_CODEC",
    "CODECS",
    "get_codec",
    "offered_codecs",
    "negotiate",
    "decode_body",
]


class ProtocolError(Exception):
    """A malformed or oversized frame / message."""


# First byte of every binary body.  0xB1 is a UTF-8 continuation byte,
# which can never start valid UTF-8 text — so no JSON body collides.
MAGIC = 0xB1

# Frame-type codes: index into this tuple is the 1-byte type tag.
# Append-only — renumbering breaks mixed-version clusters.
FRAME_TYPES = (
    "HELLO", "WELCOME", "JOB", "TASK", "OFFCUT", "INCUMBENT", "RESULT",
    "RELEASE", "HEARTBEAT", "JOB_DONE", "RETIRE", "SHUTDOWN", "BYE", "ERROR",
    "STEAL", "STOLEN",
)
_TYPE_INDEX = {name: i for i, name in enumerate(FRAME_TYPES)}
_TYPE_ESCAPE = 0xFE  # unregistered type: escape byte + raw string

# Interned strings: field names, node tags and common string values get
# a 1-byte code on the wire (key position: the code itself; value
# position: T_KEY + code).  Append-only, at most 255 entries (0xFF is
# the raw-key escape).
_KEYS = (
    "type", "job", "task", "epoch", "node", "nodes", "depth", "value",
    "version", "name", "slots", "worker", "heartbeat", "factory",
    "factory_args", "stype_kind", "stype_kwargs", "budget", "share_poll",
    "best", "knowledge", "prunes", "backtracks", "max_depth", "goal",
    "tasks", "reason", "leases", "codec", "codecs",
    "json", "binary", "enumeration", "optimisation", "decision",
    "__tuple__", "__set__", "__frozenset__", "__pickle__",
    "coordination", "chunked", "d_cutoff", "bound",
    "stacksteal", "ordered",
)
_KEY_INDEX = {name: i for i, name in enumerate(_KEYS)}
_RAW_KEY = 0xFF
assert len(_KEYS) < _RAW_KEY

# Value tags.  Append-only.
T_NONE = 0x00
T_TRUE = 0x01
T_FALSE = 0x02
T_INT = 0x03      # zigzag LEB128 varint (arbitrary precision)
T_FLOAT = 0x04    # 8 bytes, network-order IEEE double
T_STR = 0x05      # varint byte length + UTF-8
T_KEY = 0x06      # 1-byte index into _KEYS (interned string value)
T_LIST = 0x07     # varint count + values
T_DICT = 0x08     # varint count + (key, value) pairs; string keys only
T_TUPLE = 0x09    # varint count + values -> {"__tuple__": [...]}
T_SET = 0x0A      # varint count + values -> {"__set__": [...]}
T_FSET = 0x0B     # varint count + values -> {"__frozenset__": [...]}
T_PICKLE = 0x0C   # varint byte length + raw pickle -> {"__pickle__": b64}

_TAG_CODES = {
    "__tuple__": T_TUPLE,
    "__set__": T_SET,
    "__frozenset__": T_FSET,
    "__pickle__": T_PICKLE,
}
_TAG_NAMES = {T_TUPLE: "__tuple__", T_SET: "__set__", T_FSET: "__frozenset__"}

_F8 = struct.Struct("!d")

# Bound on varint width: 700 bits covers any counter, seed or key this
# runtime ships while refusing the pathological all-continuation-bytes
# body that would otherwise build a multi-megabyte integer.
_MAX_VARINT_SHIFT = 700


# -- binary encoding ---------------------------------------------------------


def _append_uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _append_str(out: bytearray, value: str) -> None:
    data = value.encode("utf-8")
    _append_uvarint(out, len(data))
    out += data


def _encode_key(out: bytearray, key: Any) -> None:
    if type(key) is not str:
        raise ProtocolError(
            f"binary codec requires string dict keys, got {type(key).__name__}"
        )
    code = _KEY_INDEX.get(key)
    if code is not None:
        out.append(code)
    else:
        out.append(_RAW_KEY)
        _append_str(out, key)


def _encode_dict(out: bytearray, value: dict) -> None:
    if len(value) == 1:
        # The node-tag shapes encode_node emits get dedicated tags; the
        # pickle tag additionally sheds its base64 armour (raw bytes on
        # the wire).  Anything shaped differently — including a
        # non-canonical base64 string, which would not round-trip —
        # falls through to the generic dict encoding.
        (key, inner), = value.items()
        code = _TAG_CODES.get(key)
        if code is not None:
            if code == T_PICKLE:
                if type(inner) is str:
                    try:
                        raw = base64.b64decode(inner, validate=True)
                    except binascii.Error:
                        raw = None
                    if raw is not None and base64.b64encode(raw).decode("ascii") == inner:
                        out.append(T_PICKLE)
                        _append_uvarint(out, len(raw))
                        out += raw
                        return
            elif type(inner) is list:
                out.append(code)
                _append_uvarint(out, len(inner))
                for item in inner:
                    _encode_value(out, item)
                return
    out.append(T_DICT)
    _append_uvarint(out, len(value))
    for key, item in value.items():
        _encode_key(out, key)
        _encode_value(out, item)


def _encode_value(out: bytearray, value: Any) -> None:
    tv = type(value)
    if tv is int:
        out.append(T_INT)
        _append_uvarint(
            out, (value << 1) if value >= 0 else ((-value << 1) - 1)
        )
    elif tv is str:
        code = _KEY_INDEX.get(value)
        if code is not None:
            out.append(T_KEY)
            out.append(code)
        else:
            out.append(T_STR)
            _append_str(out, value)
    elif tv is dict:
        _encode_dict(out, value)
    elif tv is list:
        out.append(T_LIST)
        _append_uvarint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif value is None:
        out.append(T_NONE)
    elif tv is bool:
        out.append(T_TRUE if value else T_FALSE)
    elif tv is float:
        out.append(T_FLOAT)
        out += _F8.pack(value)
    elif isinstance(value, bool):  # bool subclasses, before int
        out.append(T_TRUE if value else T_FALSE)
    elif isinstance(value, int):  # IntEnum and friends
        out.append(T_INT)
        v = int(value)
        _append_uvarint(out, (v << 1) if v >= 0 else ((-v << 1) - 1))
    elif isinstance(value, float):
        out.append(T_FLOAT)
        out += _F8.pack(value)
    elif isinstance(value, str):
        out.append(T_STR)
        _append_str(out, value)
    elif isinstance(value, (list, tuple)):
        out.append(T_LIST)
        _append_uvarint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        _encode_dict(out, value)
    else:
        raise ProtocolError(
            f"binary codec cannot encode {type(value).__name__} "
            "(wire messages carry JSON-safe values; run nodes through "
            "encode_node first)"
        )


def _binary_encode(msg: dict) -> bytes:
    if not isinstance(msg, dict):
        raise ProtocolError("a wire message must be a dict")
    mtype = msg.get("type")
    out = bytearray()
    out.append(MAGIC)
    code = _TYPE_INDEX.get(mtype)
    if code is not None:
        out.append(code)
    else:
        if not isinstance(mtype, str):
            raise ProtocolError("a wire message needs a string 'type'")
        out.append(_TYPE_ESCAPE)
        _append_str(out, mtype)
    _append_uvarint(out, len(msg) - 1)
    for key, value in msg.items():
        if key == "type":
            continue
        _encode_key(out, key)
        _encode_value(out, value)
    return bytes(out)


# -- binary decoding ---------------------------------------------------------


def _read_uvarint(buf: bytes, pos: int) -> tuple[int, int]:
    shift = 0
    result = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > _MAX_VARINT_SHIFT:
            raise ProtocolError("varint exceeds the supported width")


def _read_str(buf: bytes, pos: int) -> tuple[str, int]:
    length, pos = _read_uvarint(buf, pos)
    if length > len(buf) - pos:
        raise ProtocolError("string length exceeds the frame")
    end = pos + length
    try:
        return buf[pos:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"invalid UTF-8 in binary frame: {exc}") from None


def _read_key(buf: bytes, pos: int) -> tuple[str, int]:
    code = buf[pos]
    pos += 1
    if code == _RAW_KEY:
        return _read_str(buf, pos)
    if code < len(_KEYS):
        return _KEYS[code], pos
    raise ProtocolError(f"unknown interned-key code 0x{code:02x}")


def _decode_value(buf: bytes, pos: int) -> tuple[Any, int]:
    tag = buf[pos]
    pos += 1
    if tag == T_INT:
        u, pos = _read_uvarint(buf, pos)
        return ((u >> 1) if not u & 1 else -((u + 1) >> 1)), pos
    if tag == T_KEY:
        code = buf[pos]
        if code >= len(_KEYS):
            raise ProtocolError(f"unknown interned-key code 0x{code:02x}")
        return _KEYS[code], pos + 1
    if tag == T_STR:
        return _read_str(buf, pos)
    if tag == T_LIST:
        count, pos = _read_uvarint(buf, pos)
        if count > len(buf) - pos:
            raise ProtocolError("collection count exceeds the frame")
        items = []
        append = items.append
        for _ in range(count):
            item, pos = _decode_value(buf, pos)
            append(item)
        return items, pos
    if tag == T_DICT:
        count, pos = _read_uvarint(buf, pos)
        if count > len(buf) - pos:
            raise ProtocolError("collection count exceeds the frame")
        result: dict = {}
        for _ in range(count):
            key, pos = _read_key(buf, pos)
            result[key], pos = _decode_value(buf, pos)
        return result, pos
    if tag in _TAG_NAMES:
        count, pos = _read_uvarint(buf, pos)
        if count > len(buf) - pos:
            raise ProtocolError("collection count exceeds the frame")
        items = []
        append = items.append
        for _ in range(count):
            item, pos = _decode_value(buf, pos)
            append(item)
        return {_TAG_NAMES[tag]: items}, pos
    if tag == T_PICKLE:
        length, pos = _read_uvarint(buf, pos)
        if length > len(buf) - pos:
            raise ProtocolError("pickle length exceeds the frame")
        end = pos + length
        b64 = base64.b64encode(buf[pos:end]).decode("ascii")
        return {"__pickle__": b64}, end
    if tag == T_NONE:
        return None, pos
    if tag == T_TRUE:
        return True, pos
    if tag == T_FALSE:
        return False, pos
    if tag == T_FLOAT:
        if len(buf) - pos < 8:
            raise ProtocolError("truncated float in binary frame")
        return _F8.unpack_from(buf, pos)[0], pos + 8
    raise ProtocolError(f"unknown value tag 0x{tag:02x}")


def _binary_decode(body: bytes) -> dict:
    try:
        code = body[1]
        pos = 2
        if code == _TYPE_ESCAPE:
            mtype, pos = _read_str(body, pos)
        elif code < len(FRAME_TYPES):
            mtype = FRAME_TYPES[code]
        else:
            raise ProtocolError(f"unknown frame-type code 0x{code:02x}")
        count, pos = _read_uvarint(body, pos)
        if count > len(body) - pos:
            raise ProtocolError("field count exceeds the frame")
        msg = {"type": mtype}
        for _ in range(count):
            key, pos = _read_key(body, pos)
            msg[key], pos = _decode_value(body, pos)
    except IndexError:
        raise ProtocolError("truncated binary frame") from None
    if pos != len(body):
        raise ProtocolError(
            f"{len(body) - pos} trailing byte(s) after binary frame"
        )
    return msg


# -- the codec objects -------------------------------------------------------


def decode_body(body: bytes) -> dict:
    """Decode one frame body, auto-detecting the codec by its first
    byte.  Raises :class:`ProtocolError` on anything malformed."""
    if not body:
        raise ProtocolError("empty frame body")
    if body[0] == MAGIC:
        return _binary_decode(body)
    try:
        msg = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(msg, dict) or "type" not in msg:
        raise ProtocolError("frame is not a message object with a 'type'")
    return msg


class WireCodec:
    """One body format: ``encode`` is format-specific, ``decode`` is the
    shared auto-detecting reader (see the module docstring)."""

    name: str = "?"

    def encode(self, msg: dict) -> bytes:
        """Serialise one message dict to a frame body."""
        raise NotImplementedError

    @staticmethod
    def decode(body: bytes) -> dict:
        """Decode one frame body (delegates to :func:`decode_body`)."""
        return decode_body(body)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WireCodec {self.name}>"


class JsonWireCodec(WireCodec):
    name = "json"

    def encode(self, msg: dict) -> bytes:
        """Serialise to compact UTF-8 JSON (the v1 wire format)."""
        return json.dumps(msg, separators=(",", ":")).encode("utf-8")


class BinaryWireCodec(WireCodec):
    name = "binary"

    def encode(self, msg: dict) -> bytes:
        """Serialise to the struct-packed binary format (v2)."""
        return _binary_encode(msg)


JSON_CODEC = JsonWireCodec()
BINARY_CODEC = BinaryWireCodec()
CODECS: dict[str, WireCodec] = {"json": JSON_CODEC, "binary": BINARY_CODEC}
CODEC_NAMES = tuple(CODECS)


def get_codec(name: str) -> WireCodec:
    """The codec registered under ``name`` (ProtocolError if unknown)."""
    try:
        return CODECS[name]
    except KeyError:
        raise ProtocolError(
            f"unknown wire codec {name!r}; expected one of {CODEC_NAMES}"
        ) from None


def offered_codecs(preferred: str = "binary") -> list[str]:
    """The ``codecs`` list a worker puts in its HELLO, preferred first.

    ``preferred="json"`` offers JSON *only* — the switch a deliberately
    down-level worker (or an operator debugging with tcpdump) uses to
    veto the binary format for its own connection.
    """
    get_codec(preferred)  # validate
    if preferred == "json":
        return ["json"]
    return [preferred] + [n for n in CODEC_NAMES if n != preferred]


def negotiate(offered: Optional[list], preferred: str = "binary") -> str:
    """Pick the codec for one connection from a HELLO's ``codecs``.

    The coordinator's ``preferred`` wins if the worker offered it; else
    the worker's first offer this side knows; else JSON — which is also
    what a v1 HELLO (no ``codecs`` field at all) negotiates, keeping
    old JSON peers talking to a new coordinator.
    """
    names = [n for n in (offered or ()) if isinstance(n, str)]
    if not names:
        return "json"
    if preferred in names and preferred in CODECS:
        return preferred
    for name in names:
        if name in CODECS:
            return name
    return "json"
