"""Tests for the multiprocessing Ordered (replicable) backend.

The contract under test is Replicable BnB: same instance, same
``d_cutoff`` — identical objective, witness AND node counters at any
process count, all equal to
:func:`~repro.core.ordered.ordered_reference_search`.  The suite pins
that with full-count fingerprints rather than value-only checks.

Also hosts the process-level half of the ``ordered-tiebreak`` mutation
test (satellite: mutation testing).  The deterministic witness-flip
lives at the ledger level in ``tests/core/test_ordered_core.py``; here
we assert the process backend's counters are immune to the mutation by
construction, and the repetition-oracle catch is in
``tests/verify/test_repetition.py``.
"""

import pytest

from repro.core.ordered import ordered_reference_search
from repro.core.results import validate_result
from repro.core.searchtypes import Decision, Enumeration, Optimisation
from repro.core.sequential import sequential_search
from repro.runtime.processes import multiprocessing_ordered_search
from repro.verify.repetition import result_fingerprint

from tests.runtime.test_processes import (
    clique_spec_factory,
    decision_factory,
    enumeration_factory,
    optimisation_factory,
    uts_spec_factory,
)

# Small enough that repeated runs stay cheap, big enough that the
# frontier has real ties and stale-bound speculation to get wrong.
CLIQUE_ARGS = (16, 0.6, 7)
UTS_ARGS = (2.0, 4, 11)


def tied_witness_factory():
    """Two leaves tied at the optimum: 'a' must win by discovery order."""
    from tests.conftest import make_toy_spec

    return make_toy_spec({"root": ["a", "b"]}, {"root": 0, "a": 5, "b": 5})


def _reference(spec_factory, args, stype, *, d_cutoff=2):
    return ordered_reference_search(
        spec_factory(*args), stype, d_cutoff=d_cutoff
    )


class TestReplicable:
    def test_fingerprint_identical_across_process_counts(self):
        want = result_fingerprint(
            _reference(clique_spec_factory, CLIQUE_ARGS, Optimisation()),
            counts=True,
        )
        for n in (1, 2, 3):
            res = multiprocessing_ordered_search(
                clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
                n_processes=n, d_cutoff=2,
            )
            assert result_fingerprint(res, counts=True) == want, n
            assert validate_result(clique_spec_factory(*CLIQUE_ARGS), res)

    def test_repeated_runs_bit_identical(self):
        want = result_fingerprint(
            _reference(clique_spec_factory, CLIQUE_ARGS, Optimisation()),
            counts=True,
        )
        prints = [
            result_fingerprint(
                multiprocessing_ordered_search(
                    clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
                    n_processes=2, d_cutoff=2,
                ),
                counts=True,
            )
            for _ in range(5)
        ]
        assert prints == [want] * 5

    def test_enumeration_counts_match_reference_and_sequential(self):
        seq = sequential_search(uts_spec_factory(*UTS_ARGS), Enumeration())
        ref = _reference(uts_spec_factory, UTS_ARGS, Enumeration())
        res = multiprocessing_ordered_search(
            uts_spec_factory, UTS_ARGS, enumeration_factory,
            n_processes=3, d_cutoff=2,
        )
        assert res.value == ref.value == seq.value
        assert res.metrics.nodes == ref.metrics.nodes == seq.metrics.nodes
        assert res.metrics.max_depth == ref.metrics.max_depth

    def test_decision_found_and_refuted(self):
        seq = sequential_search(
            clique_spec_factory(*CLIQUE_ARGS), Optimisation()
        )
        hit = multiprocessing_ordered_search(
            clique_spec_factory, CLIQUE_ARGS, decision_factory, (seq.value,),
            n_processes=2, d_cutoff=2,
        )
        assert hit.found is True
        assert hit.value >= seq.value
        miss = multiprocessing_ordered_search(
            clique_spec_factory, CLIQUE_ARGS, decision_factory,
            (seq.value + 1,),
            n_processes=2, d_cutoff=2,
        )
        assert miss.found is False


class TestEdgeCases:
    def test_d_cutoff_deeper_than_tree_runs_inline(self):
        # The whole tree fits in the phase-1 prefix: no tasks, no
        # processes, and the answer still matches the reference.
        args = (2.0, 2, 5)
        ref = _reference(uts_spec_factory, args, Enumeration(), d_cutoff=6)
        res = multiprocessing_ordered_search(
            uts_spec_factory, args, enumeration_factory,
            n_processes=2, d_cutoff=6,
        )
        assert result_fingerprint(res, counts=True) == result_fingerprint(
            ref, counts=True
        )

    def test_singleton_tree(self):
        args = (1, 0.5, 0)
        res = multiprocessing_ordered_search(
            clique_spec_factory, args, optimisation_factory,
            n_processes=2, d_cutoff=2,
        )
        seq = sequential_search(clique_spec_factory(*args), Optimisation())
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            multiprocessing_ordered_search(
                clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
                n_processes=0,
            )
        with pytest.raises(ValueError):
            multiprocessing_ordered_search(
                clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
                n_processes=1, share_poll=0,
            )


class TestOrderedTiebreakMutation:
    """Process-level checks for the ``ordered-tiebreak`` mutation.

    The mutation corrupts witness tie-breaking only: node counters and
    the objective must be untouched no matter how speculation lands, so
    those are asserted exactly even with the mutation active.  (The
    deterministic witness-flip is pinned at the ledger level in
    tests/core/test_ordered_core.py, where arrival order is scripted.)
    """

    def test_clean_run_witness_is_discovery_order(self):
        res = multiprocessing_ordered_search(
            tied_witness_factory, (), optimisation_factory,
            n_processes=1, d_cutoff=1,
        )
        ref = ordered_reference_search(
            tied_witness_factory(), Optimisation(), d_cutoff=1
        )
        assert res.value == ref.value == 5
        assert res.node == ref.node == "a"  # priority wins the tie

    def test_mutation_cannot_perturb_counts_or_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_MUTATION", "ordered-tiebreak")
        ref = ordered_reference_search(
            tied_witness_factory(), Optimisation(), d_cutoff=1
        )
        res = multiprocessing_ordered_search(
            tied_witness_factory, (), optimisation_factory,
            n_processes=1, d_cutoff=1,
        )
        # Bounds are tracked apart from the witness: value and every
        # counter stay exact even under the mutation...
        assert res.value == ref.value
        assert res.metrics.nodes == ref.metrics.nodes
        assert res.metrics.prunes == ref.metrics.prunes
        assert res.metrics.backtracks == ref.metrics.backtracks
        # ...and the witness can only move between the tied optima.
        assert res.node in ("a", "b")
