"""Tests for the splittable deterministic RNG."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import SplitMix64, splittable_hash

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestSplittableHash:
    @given(u64, st.integers(min_value=0, max_value=1000))
    def test_deterministic(self, state, index):
        assert splittable_hash(state, index) == splittable_hash(state, index)

    @given(u64, st.integers(min_value=0, max_value=1000))
    def test_output_is_64_bit(self, state, index):
        assert 0 <= splittable_hash(state, index) < (1 << 64)

    def test_children_distinct(self):
        children = {splittable_hash(12345, i) for i in range(1000)}
        assert len(children) == 1000

    def test_states_distinct_across_parents(self):
        a = {splittable_hash(1, i) for i in range(100)}
        b = {splittable_hash(2, i) for i in range(100)}
        assert not (a & b)

    def test_avalanche_on_adjacent_indices(self):
        # Consecutive indices should produce uncorrelated outputs: the
        # XOR should have roughly half its bits set.
        x = splittable_hash(99, 0) ^ splittable_hash(99, 1)
        assert 16 <= x.bit_count() <= 48


class TestSplitMix64:
    def test_deterministic_stream(self):
        a = SplitMix64(7)
        b = SplitMix64(7)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = SplitMix64(1)
        b = SplitMix64(2)
        assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]

    def test_randrange_bounds(self):
        rng = SplitMix64(3)
        for _ in range(2000):
            assert 0 <= rng.randrange(7) < 7

    def test_randrange_covers_all_values(self):
        rng = SplitMix64(4)
        seen = {rng.randrange(5) for _ in range(500)}
        assert seen == {0, 1, 2, 3, 4}

    def test_randrange_rejects_nonpositive(self):
        rng = SplitMix64(5)
        with pytest.raises(ValueError):
            rng.randrange(0)

    def test_random_in_unit_interval(self):
        rng = SplitMix64(6)
        for _ in range(1000):
            x = rng.random()
            assert 0.0 <= x < 1.0

    def test_random_roughly_uniform(self):
        rng = SplitMix64(8)
        mean = sum(rng.random() for _ in range(5000)) / 5000
        assert 0.45 < mean < 0.55

    def test_choice(self):
        rng = SplitMix64(9)
        seq = ["a", "b", "c"]
        assert {rng.choice(seq) for _ in range(100)} == set(seq)

    def test_choice_empty_raises(self):
        with pytest.raises(IndexError):
            SplitMix64(1).choice([])

    @given(st.lists(st.integers(), max_size=30), st.integers(min_value=0, max_value=2**32))
    def test_shuffle_is_permutation(self, items, seed):
        rng = SplitMix64(seed)
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == sorted(items)

    def test_shuffle_actually_shuffles(self):
        rng = SplitMix64(10)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert shuffled != items
