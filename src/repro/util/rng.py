"""Splittable deterministic random number generation.

Two consumers need reproducible randomness that is *independent of
traversal order*:

- **UTS** (Unbalanced Tree Search, Section 5.1) derives each node's child
  count from a hash of the node's path, so that the same tree is generated
  no matter which worker expands which subtree.  The original benchmark
  uses SHA-1 splitting [30]; we use the SplitMix64 finaliser, which has
  the same "hash of (parent state, child index)" structure and excellent
  avalanche behaviour at a fraction of the cost.

- The **simulator** (victim selection in random work stealing) must be a
  pure function of its seed so every benchmark run is exactly repeatable.
"""

from __future__ import annotations

__all__ = ["splittable_hash", "SplitMix64"]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix64(z: int) -> int:
    """SplitMix64 finaliser: a high-quality 64-bit mixing function."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def splittable_hash(state: int, index: int) -> int:
    """Derive the RNG state of child ``index`` from parent ``state``.

    Deterministic and order-independent: the value depends only on the
    (state, index) pair, never on when or where it is computed.  This is
    the property UTS relies on to define one fixed tree per seed.
    """
    return _mix64((state + _GOLDEN * (index + 1)) & _MASK64)


class SplitMix64:
    """Minimal sequential PRNG over the SplitMix64 stream.

    Deliberately tiny: the simulator only needs uniform integers for
    victim selection and jitter, and carrying a full ``numpy`` generator
    per worker would dominate the footprint of the (thousands of)
    simulated workers.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = _mix64(seed)

    def next_u64(self) -> int:
        """Next raw 64-bit output."""
        self._state = (self._state + _GOLDEN) & _MASK64
        return _mix64(self._state)

    def randrange(self, n: int) -> int:
        """Uniform integer in ``[0, n)``.

        Uses rejection sampling on the top of the range so small moduli
        are exactly uniform (no modulo bias).
        """
        if n <= 0:
            raise ValueError(f"randrange bound must be positive, got {n}")
        limit = _MASK64 - (_MASK64 + 1) % n
        while True:
            x = self.next_u64()
            if x <= limit:
                return x % n

    def random(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def choice(self, seq):
        """Uniformly chosen element of a non-empty sequence."""
        if not seq:
            raise IndexError("choice from an empty sequence")
        return seq[self.randrange(len(seq))]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randrange(i + 1)
            seq[i], seq[j] = seq[j], seq[i]
