"""Node-throughput microbenchmarks (framework performance regression).

Not a paper table: these measure the raw sequential node rate of each
application under the generic skeleton, in real wall time with proper
repetition statistics.  They are the repository's performance
regression guard — the quantity Table 1's overhead story depends on —
and document what "one work unit" costs on the host machine.
"""

import pytest

from repro.core.searchtypes import make_search_type
from repro.core.sequential import sequential_search
from repro.instances.library import spec_for

# (instance, rough sequential node count) — small enough for tight loops.
CASES = [
    ("brock100-1", "maxclique"),
    ("knap-strong-28", "knapsack"),
    ("tsp-rand-11", "tsp"),
    ("sip-planted-18-65", "sip"),
    ("uts-bin-med", "uts"),
    ("ns-genus-14", "ns"),
]


@pytest.mark.parametrize("instance,app", CASES, ids=[c[0] for c in CASES])
def test_sequential_node_throughput(benchmark, instance, app):
    spec, stype_name, kwargs = spec_for(instance)
    stype = make_search_type(stype_name, **kwargs)

    result = benchmark(sequential_search, spec, stype)
    nodes = result.metrics.nodes
    rate = nodes / benchmark.stats.stats.mean
    benchmark.extra_info["nodes"] = nodes
    benchmark.extra_info["nodes_per_second"] = round(rate)
    # Guard: the generic skeleton should sustain a five-digit node rate
    # on every application (SIP/NS nodes are the most expensive).
    assert rate > 5_000, f"{app} node rate collapsed: {rate:.0f}/s"
