"""Tests for the reduction-sequence checker.

The headline property: every run the machine produces is certified
legal by the independent checker — a mechanised cross-check between the
rule *generator* and the rule *definitions*.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics.checker import check_run, judge
from repro.semantics.generators import tree_of_generator
from repro.semantics.machine import (
    DECISION,
    ENUMERATION,
    OPTIMISATION,
    Configuration,
    Machine,
    SearchProblem,
    ThreadState,
)
from repro.semantics.monoids import BoundedMaxMonoid, MaxMonoid, SumMonoid
from repro.semantics.tree import OrderedTree
from repro.semantics.words import EPSILON


def binary_tree(depth=2):
    return tree_of_generator(lambda w: "ab" if len(w) < depth else "")


def close_under_prefix(words):
    nodes = {EPSILON}
    for w in words:
        for i in range(len(w) + 1):
            nodes.add(w[:i])
    return nodes


trees = st.lists(
    st.lists(st.sampled_from("abc"), max_size=4).map(tuple), max_size=8
).map(lambda ws: OrderedTree.from_nodes(close_under_prefix(ws)))

policies = st.sampled_from([None, "any", "depth", "budget", "stack"])


def record_run(machine, tree, n_threads):
    cfg = Configuration.initial(machine.problem, tree, n_threads)
    run = [cfg]
    while (nxt := machine.step(cfg)) is not None:
        run.append(nxt)
        cfg = nxt
    return run


class TestMachineRunsAreLegal:
    @settings(max_examples=40, deadline=None)
    @given(trees, policies, st.integers(0, 2**32), st.integers(1, 3))
    def test_enumeration_runs_certified(self, tree, policy, seed, n_threads):
        problem = SearchProblem(ENUMERATION, SumMonoid(), lambda w: 1)
        machine = Machine(problem, spawn_policy=policy, d_cutoff=1, k_budget=1, seed=seed)
        run = record_run(machine, tree, n_threads)
        judgements = check_run(problem, run)
        assert len(judgements) == len(run) - 1

    @settings(max_examples=40, deadline=None)
    @given(trees, policies, st.integers(0, 2**32), st.integers(1, 3))
    def test_optimisation_runs_certified(self, tree, policy, seed, n_threads):
        problem = SearchProblem(OPTIMISATION, MaxMonoid(), lambda w: len(w))
        machine = Machine(problem, spawn_policy=policy, d_cutoff=1, k_budget=1, seed=seed)
        run = record_run(machine, tree, n_threads)
        check_run(problem, run)

    @settings(max_examples=30, deadline=None)
    @given(trees, policies, st.integers(0, 2**32))
    def test_decision_runs_certified(self, tree, policy, seed):
        k = max(1, max(len(w) for w in tree.nodes))
        problem = SearchProblem(
            DECISION, BoundedMaxMonoid(k), lambda w: min(len(w), k)
        )
        machine = Machine(problem, spawn_policy=policy, d_cutoff=1, k_budget=1, seed=seed)
        run = record_run(machine, tree, 2)
        check_run(problem, run)

    @settings(max_examples=20, deadline=None)
    @given(trees, st.integers(0, 2**32))
    def test_pruning_runs_certified(self, tree, seed):
        h = {w: len(w) for w in tree.nodes}
        bound = {}
        for v in reversed(tree.preorder()):
            bound[v] = max([h[v]] + [bound[c] for c in tree.children(v)])
        problem = SearchProblem(
            OPTIMISATION,
            MaxMonoid(),
            h.__getitem__,
            prunes=lambda u, v: bound[v] <= h[u],
        )
        machine = Machine(problem, spawn_policy="any", seed=seed)
        run = record_run(machine, tree, 2)
        check_run(problem, run)


class TestJudgeRejections:
    """The checker must refuse manufactured illegal steps."""

    def _initial(self, problem, tree=None, n=1):
        return Configuration.initial(problem, tree or binary_tree(), n)

    def test_rejects_no_change(self):
        problem = count = SearchProblem(ENUMERATION, SumMonoid(), lambda w: 1)
        cfg = self._initial(count)
        verdict = judge(problem, cfg, cfg)
        assert not verdict.legal

    def test_rejects_wrong_accumulation(self):
        problem = SearchProblem(ENUMERATION, SumMonoid(), lambda w: 1)
        machine = Machine(problem, spawn_policy=None)
        a = self._initial(problem)
        b = machine.step(a)  # schedule+process root: knowledge 0 -> 1
        forged = Configuration(99, b.tasks, b.threads)
        assert not judge(problem, a, forged).legal

    def test_rejects_teleporting_thread(self):
        problem = SearchProblem(ENUMERATION, SumMonoid(), lambda w: 1)
        machine = Machine(problem, spawn_policy=None)
        a = machine.step(self._initial(problem))  # thread at root
        th = a.threads[0]
        # jump straight to a non-successor deep node
        forged_thread = ThreadState(th.task, ("b", "a"), th.backtracks)
        forged = Configuration(a.knowledge + 1, a.tasks, [forged_thread])
        assert not judge(problem, a, forged).legal

    def test_rejects_unjustified_prune(self):
        problem = SearchProblem(
            OPTIMISATION,
            MaxMonoid(),
            lambda w: len(w),
            prunes=lambda u, v: False,  # nothing is ever justified
        )
        machine = Machine(problem, spawn_policy=None)
        a = machine.step(self._initial(problem))
        th = a.threads[0]
        doomed = set(th.task.subtree(th.node).nodes) - {th.node}
        forged_thread = ThreadState(th.task.remove(doomed), th.node, th.backtracks)
        forged = Configuration(a.knowledge, a.tasks, [forged_thread])
        verdict = judge(problem, a, forged)
        assert not verdict.legal
        assert "not justified" in verdict.reason

    def test_rejects_spawn_of_explored_node(self):
        problem = SearchProblem(ENUMERATION, SumMonoid(), lambda w: 1)
        machine = Machine(problem, spawn_policy=None)
        cfg = self._initial(problem)
        cfg = machine.step(cfg)  # at root
        cfg = machine.step(cfg)  # expand to ("a",)
        th = cfg.threads[0]
        # forge: spawn the *current* subtree including the explored node
        sub = th.task.subtree(("a",))
        from collections import deque

        forged = Configuration(
            cfg.knowledge,
            deque(list(cfg.tasks) + [sub]),
            [ThreadState(th.task.remove(sub.nodes), th.node, th.backtracks)],
        )
        assert not judge(problem, cfg, forged).legal

    def test_check_run_raises_on_forged_sequence(self):
        problem = SearchProblem(ENUMERATION, SumMonoid(), lambda w: 1)
        cfg = self._initial(problem)
        with pytest.raises(AssertionError):
            check_run(problem, [cfg, cfg])
