"""Head-to-head: static depth-bounded vs dynamic budget process backends.

Not a paper table: this measures the repository's own multiprocessing
backends in real wall time.  The question is the one that motivated the
dynamic backend — on *imbalanced* trees, does runtime work sharing beat
a frontier fixed up front at depth d?  Three instances cover the
spectrum:

- ``uts-bin-med``   binomial UTS: one root with 500 children of wildly
  different sizes — the load-balancing stress case;
- ``sip-planted-18-65``   subgraph-isomorphism decision: pruning makes
  subtree sizes unpredictable;
- ``brock100-1``    dense MaxClique: comparatively regular, the case
  static splitting is supposed to be good at.

Every run is checked against the Sequential skeleton's answer before
its time is reported.  Results go to ``results/parallel_backends.txt``
(human table) and ``results/parallel_backends.json`` (machine-readable,
cited by docs/parallel.md).

Run directly: ``PYTHONPATH=src python benchmarks/bench_parallel_backends.py``
"""

from __future__ import annotations

import json
import platform
import time

from _harness import RESULTS_DIR, SCALE, fmt_row, write_result

from repro.core.searchtypes import make_search_type
from repro.core.sequential import sequential_search
from repro.instances.library import library_spec_factory, spec_for
from repro.runtime.processes import (
    make_stype,
    multiprocessing_budget_search,
    multiprocessing_depthbounded_search,
)

N_PROCESSES = 4
REPEATS = max(1, round(3 * SCALE))

# (instance, d_cutoff for static, budget for dynamic).  Cutoffs/budgets
# are each backend's reasonable-effort setting for the instance size,
# not adversarially tuned for either side.
CASES = [
    ("uts-bin-med", 1, 2000),
    ("sip-planted-18-65", 2, 2000),
    ("brock100-1", 1, 2000),
]


def _stype_args(name: str) -> tuple[str, dict]:
    _, stype_name, kwargs = spec_for(name)
    return stype_name, kwargs


def _answers_match(name: str, result, reference) -> bool:
    if result.kind == "enumeration":
        return result.value == reference.value
    if result.kind == "decision":
        return result.found == reference.found
    return result.value == reference.value


def _timed(fn, name: str, reference) -> dict:
    """Best-of-REPEATS wall time; every repetition's answer is checked."""
    best = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if not _answers_match(name, result, reference):
            raise AssertionError(
                f"{name}: backend answer {result.value!r} diverges from "
                f"sequential {reference.value!r}"
            )
        if best is None or elapsed < best["wall_time"]:
            best = {
                "wall_time": elapsed,
                "value": result.value,
                "nodes": result.metrics.nodes,
                "splits": result.metrics.spawns,
            }
    return best


def run_case(name: str, d_cutoff: int, budget: int) -> dict:
    spec, stype_name, kwargs = spec_for(name)
    stype = make_search_type(stype_name, **kwargs)

    seq = _timed(
        lambda: sequential_search(spec, stype), name,
        sequential_search(spec, stype),
    )
    reference = sequential_search(spec, stype)

    static = _timed(
        lambda: multiprocessing_depthbounded_search(
            library_spec_factory, (name,), make_stype, (stype_name, kwargs),
            n_processes=N_PROCESSES, d_cutoff=d_cutoff,
        ),
        name, reference,
    )
    dynamic = _timed(
        lambda: multiprocessing_budget_search(
            library_spec_factory, (name,), make_stype, (stype_name, kwargs),
            n_processes=N_PROCESSES, budget=budget,
        ),
        name, reference,
    )
    return {
        "instance": name,
        "search_type": stype_name,
        "n_processes": N_PROCESSES,
        "d_cutoff": d_cutoff,
        "budget": budget,
        "sequential": seq,
        "static_depthbounded": static,
        "dynamic_budget": dynamic,
        "dynamic_vs_static_speedup": static["wall_time"] / dynamic["wall_time"],
    }


def main() -> None:
    rows = [run_case(*case) for case in CASES]

    widths = [20, 12, 10, 10, 10, 8, 8]
    lines = [
        f"Parallel process backends, wall time (best of {REPEATS}), "
        f"{N_PROCESSES} processes",
        "static = depth-bounded frontier (Pool, stepped tasks); "
        "dynamic = budget work sharing (queue, fast-path loop)",
        "",
        fmt_row(
            ["instance", "type", "seq (s)", "static", "dynamic", "dyn/st", "splits"],
            widths,
        ),
    ]
    for r in rows:
        lines.append(
            fmt_row(
                [
                    r["instance"],
                    r["search_type"],
                    f"{r['sequential']['wall_time']:.3f}",
                    f"{r['static_depthbounded']['wall_time']:.3f}",
                    f"{r['dynamic_budget']['wall_time']:.3f}",
                    f"{r['dynamic_vs_static_speedup']:.2f}x",
                    r["dynamic_budget"]["splits"],
                ],
                widths,
            )
        )
    write_result("parallel_backends", lines)

    payload = {
        "benchmark": "parallel_backends",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "n_processes": N_PROCESSES,
        "repeats": REPEATS,
        "cases": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "parallel_backends.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nJSON written to {out}")


if __name__ == "__main__":
    main()
