#!/usr/bin/env python
"""Visualising a parallel search schedule (workload-management analysis).

Runs MaxClique under several coordinations with tracing enabled and
prints text Gantt charts: '#' marks where each worker was executing a
task, the 'util' row shows whole-system utilisation per time slice
(0-9 deciles), and '*' marks incumbent improvements.

The charts make §5.5's "poor parameter choices can starve or overload
the system" visible: a sane Depth-Bounded cutoff keeps everyone busy
with real work; a too-deep cutoff *floods* the system with thousands of
micro-tasks (workers stay "busy" — high efficiency — but the makespan
balloons with task bookkeeping and speculative exploration); and
Stack-Stealing generates work on demand with neither failure mode.

Run:  python examples/schedule_trace.py
"""

from repro import SkeletonParams
from repro.apps.maxclique import maxclique_spec
from repro.core.searchtypes import Optimisation
from repro.core.skeletons import COORDINATIONS
from repro.instances import load_instance
from repro.runtime.executor import SimulatedCluster
from repro.runtime.topology import Topology
from repro.runtime.trace import render_gantt


def main() -> None:
    spec = maxclique_spec(load_instance("sanr90-1"), name="sanr90-1")
    cluster = SimulatedCluster(Topology(localities=1, workers_per_locality=8),
                               trace=True)

    for skeleton, knobs, note in (
        ("depthbounded", {"d_cutoff": 1}, "healthy: ~90 real tasks for 8 workers"),
        ("depthbounded", {"d_cutoff": 3}, "flooded: thousands of micro-tasks"),
        ("stacksteal", {"chunked": True}, "on-demand splitting"),
    ):
        params = SkeletonParams(localities=1, workers_per_locality=8, **knobs)
        res = cluster.run(spec, Optimisation(), COORDINATIONS[skeleton], params)
        print(f"\n=== {skeleton} {knobs} — {note} ===")
        print(f"makespan {res.virtual_time:.0f}, clique {res.value}, "
              f"nodes {res.metrics.nodes}, tasks {res.metrics.spawns + 1}, "
              f"efficiency {res.efficiency():.0%}")
        print(render_gantt(res.trace, width=70))
        ramp = res.trace.ramp_up_time()
        print(f"ramp-up: {f'{ramp:.0f}' if ramp is not None else 'some workers never worked'}")


if __name__ == "__main__":
    main()
