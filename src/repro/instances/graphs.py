"""Seeded random graph generators in the DIMACS families.

All generators are pure functions of their parameters (including the
seed), so every instance in the library is exactly reproducible — the
synthetic analogue of distributing the benchmark files.
"""

from __future__ import annotations

from repro.apps.graph import Graph
from repro.util.rng import SplitMix64

__all__ = [
    "uniform_graph",
    "planted_clique",
    "brock_like",
    "p_hat_like",
    "cycle_graph",
]


def uniform_graph(n: int, p: float, seed: int) -> Graph:
    """Erdos-Renyi G(n, p) — the sanr-style uniform random family."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("edge probability must be in [0, 1]")
    rng = SplitMix64(seed)
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                g.add_edge(u, v)
    return g


def planted_clique(n: int, p: float, k: int, seed: int) -> Graph:
    """G(n, p) with a clique planted on k random vertices (san-style).

    san graphs hide a known maximum clique inside an otherwise random
    graph; searches are hard because the planted clique's vertices are
    not degree-distinguished until deep in the tree.
    """
    if k > n:
        raise ValueError("clique size exceeds vertex count")
    g = uniform_graph(n, p, seed)
    rng = SplitMix64(seed ^ 0xC11C5E)
    vertices = list(range(n))
    rng.shuffle(vertices)
    members = vertices[:k]
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if not g.has_edge(u, v):
                g.add_edge(u, v)
    return g


def brock_like(n: int, p: float, k: int, seed: int) -> Graph:
    """Camouflaged planted clique (Brockington-Culberson style).

    Plants a k-clique, then removes random non-clique edges incident to
    clique members until their expected degree matches the background,
    so degree heuristics cannot spot the clique — the property that
    makes brock instances hard for greedy-ordered solvers.
    """
    if k > n:
        raise ValueError("clique size exceeds vertex count")
    g = uniform_graph(n, p, seed)
    rng = SplitMix64(seed ^ 0xB20C4)
    vertices = list(range(n))
    rng.shuffle(vertices)
    members = set(vertices[:k])
    for i_u, u in enumerate(sorted(members)):
        for v in sorted(members):
            if v > u and not g.has_edge(u, v):
                g.add_edge(u, v)
    # Each clique member gained ~(k-1)*(1-p) unexpected edges; remove
    # that many of its random edges to outsiders to hide the bump.
    surplus = int(round((k - 1) * (1.0 - p)))
    for u in sorted(members):
        outsiders = [v for v in range(n) if v not in members and g.has_edge(u, v)]
        rng.shuffle(outsiders)
        for v in outsiders[:surplus]:
            g.adj[u] &= ~(1 << v)
            g.adj[v] &= ~(1 << u)
    return g


def p_hat_like(n: int, p_min: float, p_max: float, seed: int) -> Graph:
    """Wide degree-spread random graph (p_hat style).

    Each vertex draws a weight in [p_min, p_max]; an edge appears with
    the mean of its endpoints' weights.  The resulting degree spread
    produces the long colouring tails characteristic of p_hat instances.
    """
    if not 0.0 <= p_min <= p_max <= 1.0:
        raise ValueError("need 0 <= p_min <= p_max <= 1")
    rng = SplitMix64(seed)
    weights = [p_min + (p_max - p_min) * rng.random() for _ in range(n)]
    g = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.5 * (weights[u] + weights[v]):
                g.add_edge(u, v)
    return g


def cycle_graph(n: int) -> Graph:
    """C_n — handy deterministic fixture for tests."""
    if n < 3:
        raise ValueError("cycles need at least 3 vertices")
    return Graph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])
