"""Claim check: global knowledge updates are rare (§2.1, citing [5]).

"Knowledge is shared globally which can be expensive on large
(distributed memory) systems, although [5] shows that in many important
searches there are few global knowledge updates."

This bench counts incumbent broadcasts per search across the
branch-and-bound applications on 120 simulated workers.  Expected
shape: broadcasts are a vanishing fraction of processed nodes (tens
against tens of thousands) — the reason YewPar can afford global
incumbent broadcast at all.
"""

from repro.core.params import SkeletonParams

from ._harness import fmt_row, run_parallel, write_result

INSTANCES = [
    "sanr100-1",
    "brock120-1",
    "p_hat100-2",
    "knap-sim-30",
    "tsp-rand-12",
    "sip-planted-20-70",
]
PARAMS = SkeletonParams(localities=8, workers_per_locality=15, d_cutoff=2)


def test_knowledge_update_rate(benchmark):
    results = {}

    def run_all():
        for name in INSTANCES:
            results[name] = run_parallel(name, "depthbounded", PARAMS)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    widths = [20, 10, 12, 14]
    lines = [
        f"Knowledge updates per search ({PARAMS.workers} workers, Depth-Bounded d=2)",
        fmt_row(["instance", "nodes", "broadcasts", "per 1k nodes"], widths),
    ]
    for name in INSTANCES:
        res = results[name]
        rate = 1000.0 * res.metrics.broadcasts / max(1, res.metrics.nodes)
        lines.append(
            fmt_row(
                [name, res.metrics.nodes, res.metrics.broadcasts, f"{rate:.2f}"],
                widths,
            )
        )
    lines.append(
        "paper §2.1/[5]: few global knowledge updates -> global incumbent "
        "broadcast is affordable"
    )
    write_result("knowledge_updates", lines)

    for name in INSTANCES:
        res = results[name]
        # Broadcasts must be a small fraction of the work (parallel
        # decision searches race on depth improvements, so the bound is
        # a few percent, not a few per mille).
        assert res.metrics.broadcasts <= max(200, res.metrics.nodes // 20), name
