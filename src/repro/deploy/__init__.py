"""repro.deploy — elastic, self-scaling cluster deployment.

The deployment layer sits above :mod:`repro.cluster`: where the cluster
runtime answers "how do N workers search one tree correctly over TCP",
this package answers "how many workers should exist right now, and how
do we change that without losing work".

- :class:`WorkerSpec` — the template a fleet is stamped from.
- :class:`ClusterDeployment` — owns a coordinator plus worker
  subprocesses; ``scale(n)`` converges the fleet, retiring surplus
  workers through the coordinator's RETIRE drain.
- :class:`Adaptive` / :class:`LoadSignals` — the pure, fake-clock
  testable policy mapping load snapshots to a target fleet size with
  asymmetric hysteresis.
- :func:`elastic_budget_search` — one-call burst-then-drain search used
  by the conformance harness and the e2e tests.

See docs/deploy.md for the drain protocol and the policy knobs.
"""

from repro.deploy.adaptive import Adaptive, LoadSignals
from repro.deploy.deployment import ClusterDeployment, elastic_budget_search
from repro.deploy.spec import WorkerSpec

__all__ = [
    "Adaptive",
    "LoadSignals",
    "WorkerSpec",
    "ClusterDeployment",
    "elastic_budget_search",
]
