"""Table 1 (columns 2-4): sequential YewPar vs hand-written MaxClique.

The paper compares the Sequential skeleton against a hand-crafted C++
implementation on 18 DIMACS instances and reports per-instance slowdown
percentages with a geometric mean of +8.8%.  Here both sides are Python
(the skeleton vs :func:`sequential_maxclique_specialised`), run on the
library's 18 scaled DIMACS-family instances; tests elsewhere prove both
explore the identical tree, so the ratio isolates the Lazy-Node-
Generator abstraction cost.

Expected shape: a uniform, modest slowdown on every instance (the cost
of generality), independent of instance family.  The absolute
percentage is larger than C++'s 8.8% because Python function-call and
allocation overhead is a bigger fraction of a node visit — see
EXPERIMENTS.md for the measured value and discussion.
"""

import time

from repro.apps.maxclique import sequential_maxclique_specialised
from repro.core.searchtypes import Optimisation
from repro.core.sequential import sequential_search
from repro.instances.library import load_instance, suite
from repro.util.stats import geometric_mean, summarize_overheads

from ._harness import SCALE, fmt_row, stype_of, write_result

REPS = max(1, round(3 * SCALE))


def _measure(fn) -> float:
    """Best-of-REPS wall time (min is the standard low-noise estimator)."""
    best = float("inf")
    for _ in range(REPS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_table1_sequential_overhead(benchmark):
    instances = suite("maxclique")
    hand: dict[str, float] = {}
    skel: dict[str, float] = {}
    nodes: dict[str, int] = {}

    def run_all():
        for name in instances:
            graph = load_instance(name)
            spec, stype = stype_of(name)
            res = sequential_search(spec, stype)
            skel[name] = _measure(lambda: sequential_search(spec, stype))
            hand[name] = _measure(lambda: sequential_maxclique_specialised(graph))
            nodes[name] = res.metrics.nodes

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    slowdowns = summarize_overheads(hand, skel)
    widths = [14, 10, 10, 10, 9]
    lines = [
        "Table 1 (sequential): hand-written vs Sequential skeleton (wall s)",
        fmt_row(["instance", "hand", "skeleton", "slowdown%", "nodes"], widths),
    ]
    for name in instances:
        lines.append(
            fmt_row(
                [
                    name,
                    f"{hand[name]:.4f}",
                    f"{skel[name]:.4f}",
                    f"{slowdowns[name]:+.1f}",
                    nodes[name],
                ],
                widths,
            )
        )
    ratios = [skel[n] / hand[n] for n in instances]
    geo = (geometric_mean(ratios) - 1.0) * 100.0
    lines.append(f"geometric mean slowdown: {geo:+.1f}%  (paper: +8.8% for C++)")
    write_result("table1_seq_overhead", lines)

    # Sanity: the skeleton must pay *some* abstraction cost but remain
    # within an order of magnitude of the specialised code.
    assert geo > 0.0
    assert geometric_mean(ratios) < 20.0
