"""Skeleton tuning parameters (§4.3 "Skeletons API").

The paper exposes the knobs that control the amount and location of work
in the system — the Depth-Bounded cutoff ``d_cutoff``, the Budget
backtrack budget, the Stack-Stealing ``chunked`` flag — plus the
topology a run executes on.  Poor choices can starve or flood the
system (§5.5); Table 2's worst/random/best columns sweep exactly these.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["SkeletonParams"]

# Kept in sync with repro.core.skeletons.COORDINATIONS (params cannot
# import skeletons: skeletons imports params).
_COORDINATION_NAMES = (
    "sequential",
    "depthbounded",
    "stacksteal",
    "budget",
    "random",
    "ordered",
)


@dataclass(frozen=True)
class SkeletonParams:
    """Tuning knobs for a skeleton run.

    Attributes:
        d_cutoff: Depth-Bounded — nodes at depth <= d_cutoff become tasks.
        budget: Budget — backtracks allowed before spawning the lowest
            unexplored subtrees.
        chunked: Stack-Stealing — steal every node at the victim's lowest
            depth instead of a single node.
        spawn_probability: Random coordination — probability that a
            generated child is hived off as a task (the generic (spawn)
            rule with a coin flip; §4.2's "random task creation").
        localities: number of simulated physical machines.
        workers_per_locality: search workers per locality (the paper uses
            15 of 16 cores, reserving one for HPX).
        seed: simulator seed (victim selection and tie-breaking).
        backend: execution backend — ``"sim"`` runs parallel skeletons
            on the discrete-event simulator; ``"processes"`` runs them
            on real OS processes (:mod:`repro.runtime.processes`; only
            the depthbounded and budget coordinations have process
            implementations); ``"cluster"`` runs the budget coordination
            on a real localhost TCP cluster (:mod:`repro.cluster`) —
            an embedded coordinator plus ``cluster_workers`` worker
            processes talking the wire protocol.
        n_processes: worker processes for the ``"processes"`` backend.
        share_poll: processes/cluster backends — nodes searched between
            reads of the shared incumbent (smaller = tighter pruning,
            more sharing traffic).
        cluster_workers: worker node processes for the ``"cluster"``
            backend.
        wire_codec: cluster backend — the frame body format on the
            wire: ``"binary"`` (compact struct-packed frames, the
            default) or ``"json"`` (human-readable; handy under
            ``tcpdump``).  Negotiated per connection, so mixed fleets
            still interoperate.
        coordination: optional coordination override.  A skeleton
            normally carries its own coordination, but batch drivers
            (the verify harness, the service scheduler) configure runs
            entirely through params; setting this routes
            :meth:`Skeleton.search` to the named coordination instead
            of the skeleton's own.  None (the default) defers to the
            skeleton.
    """

    d_cutoff: int = 2
    budget: int = 1000
    chunked: bool = True
    spawn_probability: float = 0.02
    localities: int = 1
    workers_per_locality: int = 15
    seed: int = 0
    backend: str = "sim"
    n_processes: int = 2
    share_poll: int = 64
    cluster_workers: int = 2
    wire_codec: str = "binary"
    coordination: Optional[str] = None

    @property
    def workers(self) -> int:
        return self.localities * self.workers_per_locality

    def with_(self, **kwargs) -> "SkeletonParams":
        """A copy with some fields replaced (sweep convenience)."""
        return replace(self, **kwargs)

    def __post_init__(self) -> None:
        if self.d_cutoff < 0:
            raise ValueError("d_cutoff must be >= 0")
        if not 0.0 <= self.spawn_probability <= 1.0:
            raise ValueError("spawn_probability must be in [0, 1]")
        if self.localities < 1 or self.workers_per_locality < 1:
            raise ValueError("topology must have >= 1 locality and worker")
        if self.backend not in ("sim", "processes", "cluster"):
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                "expected 'sim', 'processes' or 'cluster'"
            )
        if self.wire_codec not in ("json", "binary"):
            raise ValueError(
                f"unknown wire_codec {self.wire_codec!r}; "
                "expected 'json' or 'binary'"
            )
        if (
            self.coordination is not None
            and self.coordination not in _COORDINATION_NAMES
        ):
            raise ValueError(
                f"unknown coordination {self.coordination!r}; "
                f"expected one of {_COORDINATION_NAMES} (or None to "
                "defer to the skeleton)"
            )
        # Worker/granularity counts share one validator so a bad CLI or
        # job-file value fails here with the knob's name, not later as
        # an opaque multiprocessing or socket error.
        for knob in ("budget", "n_processes", "share_poll", "cluster_workers"):
            value = getattr(self, knob)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(
                    f"{knob} must be an integer >= 1, got {value!r}"
                )
