"""Fake-clock unit tests for the Adaptive scaling policy.

``Adaptive.recommend`` takes an explicit ``now``, so every hysteresis
property here is checked deterministically — no sleeps, no threads.
"""

import pytest

from repro.deploy import Adaptive, LoadSignals


def sig(queued=0, leased=0, depth=0, active=False):
    return LoadSignals(
        queued_tasks=queued,
        leased_tasks=leased,
        service_queue_depth=depth,
        job_active=active,
    )


class TestLoadSignals:
    def test_demand_sums_the_sources(self):
        assert sig(queued=2, leased=3, depth=4).demand() == 9.0

    def test_active_job_keeps_demand_alive(self):
        # Mid-job instants where every task is momentarily accounted
        # for must not read as "idle".
        assert sig(active=True).demand() == 1.0
        assert sig().demand() == 0.0


class TestValidation:
    def test_minimum_is_at_least_one(self):
        with pytest.raises(ValueError, match="minimum"):
            Adaptive(minimum=0, maximum=2)

    def test_maximum_not_below_minimum(self):
        with pytest.raises(ValueError, match="maximum"):
            Adaptive(minimum=3, maximum=2)

    def test_smoothing_bounds(self):
        with pytest.raises(ValueError, match="smoothing"):
            Adaptive(1, 4, smoothing=0.0)
        with pytest.raises(ValueError, match="smoothing"):
            Adaptive(1, 4, smoothing=1.5)


class TestScaleUp:
    def test_first_observation_jumps_to_implied_size(self):
        pol = Adaptive(1, 8, smoothing=1.0)
        assert pol.recommend(sig(queued=5), now=0.0) == 5

    def test_scale_up_is_immediate(self):
        pol = Adaptive(1, 8, smoothing=1.0, down_cooldown=10.0)
        assert pol.recommend(sig(), now=0.0) == 1
        assert pol.recommend(sig(queued=6), now=0.1) == 6

    def test_clamped_to_maximum(self):
        pol = Adaptive(1, 4, smoothing=1.0)
        assert pol.recommend(sig(queued=100), now=0.0) == 4

    def test_up_cooldown_rate_limits_growth(self):
        pol = Adaptive(1, 8, smoothing=1.0, up_cooldown=5.0)
        assert pol.recommend(sig(queued=2), now=0.0) == 2
        # Demand doubles immediately, but the up cooldown holds.
        assert pol.recommend(sig(queued=4), now=1.0) == 2
        assert pol.recommend(sig(queued=4), now=6.0) == 4


class TestScaleDown:
    def test_not_before_cooldown(self):
        pol = Adaptive(1, 8, smoothing=1.0, down_cooldown=3.0)
        assert pol.recommend(sig(queued=4), now=0.0) == 4
        assert pol.recommend(sig(), now=1.0) == 4
        assert pol.recommend(sig(), now=2.9) == 4

    def test_after_sustained_low_demand(self):
        pol = Adaptive(1, 8, smoothing=1.0, down_cooldown=3.0)
        assert pol.recommend(sig(queued=4), now=0.0) == 4
        assert pol.recommend(sig(), now=1.0) == 4
        assert pol.recommend(sig(), now=4.1) == 1

    def test_demand_recovery_resets_the_window(self):
        pol = Adaptive(1, 8, smoothing=1.0, down_cooldown=2.0)
        assert pol.recommend(sig(queued=4), now=0.0) == 4
        assert pol.recommend(sig(), now=1.0) == 4  # low: window opens
        assert pol.recommend(sig(queued=4), now=1.5) == 4  # recovered
        # Low again — the old window must NOT carry over.
        assert pol.recommend(sig(), now=3.0) == 4
        assert pol.recommend(sig(), now=4.9) == 4
        assert pol.recommend(sig(), now=5.5) == 1

    def test_scale_down_lands_on_the_smoothed_level(self):
        """When the window fires, the fleet drops to the EMA-implied
        size, not straight to the instantaneous trough."""
        pol = Adaptive(1, 8, smoothing=0.5, down_cooldown=1.0)
        assert pol.recommend(sig(queued=8), now=0.0) == 8
        assert pol.recommend(sig(), now=1.0) == 8  # window opens, ema=4
        assert pol.recommend(sig(), now=2.0) == 2  # fires at ceil(ema=2)
        assert pol.recommend(sig(), now=2.5) == 2  # fresh window opens
        assert pol.recommend(sig(), now=3.5) == 1  # drains to the floor

    def test_never_below_minimum(self):
        pol = Adaptive(2, 8, smoothing=1.0, down_cooldown=0.0)
        pol.recommend(sig(queued=6), now=0.0)
        assert pol.recommend(sig(), now=10.0) == 2


class TestSquareWaveStability:
    def test_no_oscillation_when_period_beats_cooldown(self):
        """A square-wave load with period << down_cooldown must pin the
        fleet at its high-water mark, not flap it up and down."""
        pol = Adaptive(1, 8, smoothing=0.5, down_cooldown=4.0)
        history = []
        now = 0.0
        for tick in range(60):
            load = sig(queued=6) if (tick // 2) % 2 == 0 else sig()
            history.append(pol.recommend(load, now))
            now += 0.5  # 2s period: always shorter than the cooldown
        # After the first ramp the target never changes again.
        peak = max(history)
        settled = history[history.index(peak):]
        assert set(settled) == {peak}

    def test_sustained_idle_after_the_wave_drains(self):
        pol = Adaptive(1, 8, smoothing=0.5, down_cooldown=4.0)
        now = 0.0
        for tick in range(20):
            load = sig(queued=6) if tick % 2 == 0 else sig()
            pol.recommend(load, now)
            now += 0.5
        # Then true idle, long enough for EMA decay + cooldown.
        final = 8
        for _ in range(30):
            final = pol.recommend(sig(), now)
            now += 0.5
        assert final == 1

    def test_single_tick_blip_never_moves_the_fleet(self):
        """One empty poll between bursts opens the scale-down window
        but the recovery on the very next tick closes it; a later blip
        must start a fresh window, not inherit the old one."""
        pol = Adaptive(1, 8, smoothing=0.3, down_cooldown=2.0)
        pol.recommend(sig(queued=4), now=0.0)
        pol.recommend(sig(queued=4), now=0.5)
        pol.recommend(sig(queued=4), now=1.0)
        assert pol.recommend(sig(), now=1.5) == 4
        assert pol.recommend(sig(queued=4), now=2.0) == 4
        assert pol.recommend(sig(), now=10.0) == 4  # window was reset


class TestDesired:
    def test_target_per_worker_scales_demand(self):
        pol = Adaptive(1, 8, smoothing=1.0, target_per_worker=4.0)
        assert pol.recommend(sig(queued=8), now=0.0) == 2

    def test_desired_before_any_observation_is_minimum(self):
        assert Adaptive(2, 8).desired() == 2
