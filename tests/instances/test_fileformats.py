"""Tests for TSPLIB and knapsack file formats."""

import pytest

from repro.apps.knapsack import KnapsackInstance
from repro.apps.tsp import TSPInstance
from repro.instances.knapfile import (
    parse_knapsack,
    parse_knapsack_text,
    write_knapsack,
)
from repro.instances.library import random_knapsack, random_tsp
from repro.instances.tsplib import parse_tsplib, parse_tsplib_text, write_tsplib

BERLIN_STYLE = """NAME: tiny4
TYPE: TSP
COMMENT: four points on a unit square scaled by 10
DIMENSION: 4
EDGE_WEIGHT_TYPE: EUC_2D
NODE_COORD_SECTION
1 0 0
2 10 0
3 10 10
4 0 10
EOF
"""


class TestTsplibEuc2d:
    def test_parse_square(self):
        inst = parse_tsplib_text(BERLIN_STYLE)
        assert inst.n == 4
        assert inst.dist[0][1] == 10
        assert inst.dist[0][2] == 14  # round(sqrt(200)) = 14
        assert inst.dist[1][3] == 14

    def test_missing_coords_rejected(self):
        with pytest.raises(ValueError):
            parse_tsplib_text(
                "TYPE: TSP\nDIMENSION: 3\nEDGE_WEIGHT_TYPE: EUC_2D\nEOF\n"
            )

    def test_wrong_token_count_rejected(self):
        with pytest.raises(ValueError):
            parse_tsplib_text(
                "DIMENSION: 2\nEDGE_WEIGHT_TYPE: EUC_2D\n"
                "NODE_COORD_SECTION\n1 0 0\nEOF\n"
            )

    def test_unsupported_type_rejected(self):
        with pytest.raises(ValueError):
            parse_tsplib_text("TYPE: ATSP\nDIMENSION: 2\nEOF\n")

    def test_unsupported_weight_type_rejected(self):
        with pytest.raises(ValueError):
            parse_tsplib_text(
                "DIMENSION: 2\nEDGE_WEIGHT_TYPE: GEO\nNODE_COORD_SECTION\n"
                "1 0 0\n2 1 1\nEOF\n"
            )


class TestTsplibExplicit:
    def test_full_matrix_roundtrip(self, tmp_path):
        inst = random_tsp(7, seed=31)
        path = tmp_path / "t.tsp"
        write_tsplib(inst, path, name="t7")
        assert parse_tsplib(path) == inst

    def test_upper_row(self):
        text = (
            "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\n"
            "EDGE_WEIGHT_FORMAT: UPPER_ROW\nEDGE_WEIGHT_SECTION\n"
            "5 7\n9\nEOF\n"
        )
        inst = parse_tsplib_text(text)
        assert inst.dist[0][1] == 5
        assert inst.dist[0][2] == 7
        assert inst.dist[1][2] == 9
        assert inst.dist[2][1] == 9

    def test_lower_diag_row(self):
        text = (
            "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\n"
            "EDGE_WEIGHT_FORMAT: LOWER_DIAG_ROW\nEDGE_WEIGHT_SECTION\n"
            "0\n5 0\n7 9 0\nEOF\n"
        )
        inst = parse_tsplib_text(text)
        assert inst.dist[0][1] == 5
        assert inst.dist[0][2] == 7
        assert inst.dist[1][2] == 9

    def test_token_mismatch_rejected(self):
        with pytest.raises(ValueError):
            parse_tsplib_text(
                "DIMENSION: 3\nEDGE_WEIGHT_TYPE: EXPLICIT\n"
                "EDGE_WEIGHT_FORMAT: UPPER_ROW\nEDGE_WEIGHT_SECTION\n5\nEOF\n"
            )

    def test_parsed_instance_searches(self, tmp_path):
        from repro import search
        from repro.apps.tsp import tsp_spec

        inst = random_tsp(7, seed=32)
        path = tmp_path / "t.tsp"
        write_tsplib(inst, path)
        loaded = parse_tsplib(path)
        a = search(tsp_spec(inst), search_type="optimisation")
        b = search(tsp_spec(loaded), search_type="optimisation")
        assert a.value == b.value


class TestKnapsackFiles:
    def test_parse_basic(self):
        inst = parse_knapsack_text("# demo\n3\n10\n60 5\n50 4\n30 6\n")
        assert inst.n == 3
        assert inst.capacity == 10
        # density sorted: 60/5=12 > 50/4=12.5? no: 12.5 > 12 > 5
        assert inst.profits[0] / inst.weights[0] >= inst.profits[1] / inst.weights[1]

    def test_roundtrip(self, tmp_path):
        inst = random_knapsack(12, seed=41, kind="weak")
        path = tmp_path / "k.txt"
        write_knapsack(inst, path, comment="weakly correlated, seed 41")
        loaded = parse_knapsack(path)
        assert loaded == inst

    def test_short_file_rejected(self):
        with pytest.raises(ValueError):
            parse_knapsack_text("3\n")

    def test_item_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            parse_knapsack_text("2\n10\n60 5\n")

    def test_parsed_instance_searches(self):
        from repro import search
        from repro.apps.knapsack import knapsack_spec

        inst = parse_knapsack_text("3\n10\n60 5\n50 4\n30 6\n")
        res = search(knapsack_spec(inst), search_type="optimisation")
        assert res.value == 110  # items of weight 5 and 4
