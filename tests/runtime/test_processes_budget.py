"""Tests for the dynamic work-sharing (Budget) multiprocessing backend.

The backend's contract is equivalence with the Sequential skeleton —
same optimum (with a valid witness), same decision answer, same
enumeration count — under any process count, any budget, and any
interleaving of the shared task queue.  Factories are top-level
(picklable) by the same contract as the static backend's tests.
"""

import os

import pytest

from repro.core.searchtypes import Decision, Enumeration, Optimisation
from repro.core.sequential import sequential_search
from repro.runtime.processes import multiprocessing_budget_search

from tests.runtime.test_processes import (
    CLIQUE_ARGS,
    clique_spec_factory,
    decision_factory,
    enumeration_factory,
    exploding_spec_factory,
    optimisation_factory,
    singleton_spec_factory,
    toy_spec_factory,
    uts_spec_factory,
)


def knapsack_spec_factory(n, seed):
    """Rebuild a Knapsack spec from instance parameters."""
    from repro.apps.knapsack import knapsack_spec
    from repro.instances.library import random_knapsack

    return knapsack_spec(random_knapsack(n, seed, kind="strong"))


def negative_objective_factory():
    """A toy spec whose root objective is negative (guard test)."""
    from tests.conftest import make_toy_spec

    return make_toy_spec({"root": ["a"]}, {"root": -3, "a": -1})


def crashing_spec_factory():
    """A spec whose generator hard-kills the worker process mid-task.

    ``os._exit`` bypasses Python teardown entirely — no exception, no
    result message — simulating an OOM-killed or segfaulted worker.
    """
    from repro.core.nodegen import ListNodeGenerator
    from repro.core.space import SearchSpec

    children = {"root": ["a", "b"], "a": ["aa"], "b": ["bb"]}
    values = {"root": 0, "a": 1, "b": 2, "aa": 3, "bb": 4}

    def generator(space, node):
        if node == "aa":
            os._exit(17)
        return ListNodeGenerator(list(children.get(node, [])))

    return SearchSpec(
        name="crashing",
        space=None,
        root="root",
        generator=generator,
        objective=lambda node: values[node],
        upper_bound=None,
    )


UTS_ARGS = (3.0, 6, 11)
KNAP_ARGS = (16, 31)


class TestEquivalence:
    """Dynamic backend pinned to the Sequential skeleton."""

    def test_maxclique_optimum_and_witness(self):
        spec = clique_spec_factory(*CLIQUE_ARGS)
        seq = sequential_search(spec, Optimisation())
        res = multiprocessing_budget_search(
            clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
            n_processes=2, budget=100,
        )
        assert res.value == seq.value
        assert spec.witness_check(spec.space, res.node)
        assert spec.objective(res.node) == res.value

    def test_knapsack_optimum(self):
        seq = sequential_search(knapsack_spec_factory(*KNAP_ARGS), Optimisation())
        res = multiprocessing_budget_search(
            knapsack_spec_factory, KNAP_ARGS, optimisation_factory,
            n_processes=2, budget=100,
        )
        assert res.value == seq.value

    def test_uts_enumeration_count(self):
        seq = sequential_search(uts_spec_factory(*UTS_ARGS), Enumeration())
        res = multiprocessing_budget_search(
            uts_spec_factory, UTS_ARGS, enumeration_factory,
            n_processes=3, budget=50,
        )
        assert res.value == seq.value
        # Enumeration has no pruning, so splitting cannot change the set
        # of visited nodes — counts match exactly, not just the total.
        assert res.metrics.nodes == seq.metrics.nodes

    def test_decision_found(self):
        seq = sequential_search(clique_spec_factory(*CLIQUE_ARGS), Optimisation())
        res = multiprocessing_budget_search(
            clique_spec_factory, CLIQUE_ARGS, decision_factory, (seq.value,),
            n_processes=2, budget=100,
        )
        assert res.found is True
        assert res.value == seq.value

    def test_decision_refuted(self):
        seq = sequential_search(clique_spec_factory(*CLIQUE_ARGS), Optimisation())
        res = multiprocessing_budget_search(
            clique_spec_factory, CLIQUE_ARGS, decision_factory, (seq.value + 1,),
            n_processes=2, budget=100,
        )
        assert res.found is False

    def test_single_process(self):
        seq = sequential_search(clique_spec_factory(*CLIQUE_ARGS), Optimisation())
        res = multiprocessing_budget_search(
            clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
            n_processes=1, budget=100,
        )
        assert res.value == seq.value

    def test_tiny_budget_forces_many_splits(self):
        # budget=1 with share_poll=1 trips the split check at every
        # node: the search is shredded into hundreds of queue tasks and
        # must still return the sequential optimum.
        seq = sequential_search(clique_spec_factory(*CLIQUE_ARGS), Optimisation())
        res = multiprocessing_budget_search(
            clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
            n_processes=2, budget=1, share_poll=1,
        )
        assert res.value == seq.value
        assert res.metrics.spawns > 10

    def test_splits_are_counted(self):
        res = multiprocessing_budget_search(
            uts_spec_factory, UTS_ARGS, enumeration_factory,
            n_processes=2, budget=20, share_poll=4,
        )
        assert res.metrics.spawns > 0
        assert res.workers == 2


class TestEdgeCases:
    def test_singleton_tree(self):
        res = multiprocessing_budget_search(
            singleton_spec_factory, (), optimisation_factory,
            n_processes=2, budget=10,
        )
        assert res.value == 5
        assert res.metrics.nodes == 1

    def test_toy_tree_parity(self):
        seq = sequential_search(toy_spec_factory(), Optimisation())
        res = multiprocessing_budget_search(
            toy_spec_factory, (), optimisation_factory,
            n_processes=2, budget=2, share_poll=1,
        )
        assert res.value == seq.value

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            multiprocessing_budget_search(
                toy_spec_factory, (), optimisation_factory, n_processes=0
            )
        with pytest.raises(ValueError):
            multiprocessing_budget_search(
                toy_spec_factory, (), optimisation_factory, budget=0
            )
        with pytest.raises(ValueError):
            multiprocessing_budget_search(
                toy_spec_factory, (), optimisation_factory, share_poll=0
            )

    def test_negative_objective_rejected(self):
        # The shared incumbent idles at 0; a negative objective would
        # let a stale-zero read *tighten* pruning.  Reject at launch.
        with pytest.raises(ValueError, match="non-negative"):
            multiprocessing_budget_search(
                negative_objective_factory, (), optimisation_factory,
                n_processes=1,
            )


class TestCrashResilience:
    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="generator exploded"):
            multiprocessing_budget_search(
                exploding_spec_factory, (), optimisation_factory,
                n_processes=2, budget=10,
            )

    def test_worker_killed_mid_task_fails_loudly(self):
        # A worker dying without a word (os._exit) must not hang the
        # parent or silently return a partial answer.
        with pytest.raises(RuntimeError, match="exit code|without reporting"):
            multiprocessing_budget_search(
                crashing_spec_factory, (), optimisation_factory,
                n_processes=2, budget=10,
            )
