"""Tests for Unbalanced Tree Search."""

import pytest

from repro.apps.uts import UTSInstance, UTSNode, uts_spec
from repro.core.searchtypes import Enumeration
from repro.core.sequential import sequential_search


def count_tree(inst: UTSInstance) -> int:
    spec = uts_spec(inst)
    return sequential_search(spec, Enumeration()).value


class TestInstanceValidation:
    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            UTSInstance(shape="fractal")

    def test_nonpositive_b0(self):
        with pytest.raises(ValueError):
            UTSInstance(b0=0)

    def test_supercritical_binomial_rejected(self):
        with pytest.raises(ValueError):
            UTSInstance(shape="binomial", m=8, q=0.2)  # q*m = 1.6


class TestDeterminism:
    def test_same_seed_same_tree(self):
        a = UTSInstance(shape="geometric", b0=3.0, max_depth=6, seed=5)
        b = UTSInstance(shape="geometric", b0=3.0, max_depth=6, seed=5)
        assert count_tree(a) == count_tree(b)

    def test_different_seed_different_tree(self):
        counts = {
            count_tree(UTSInstance(shape="geometric", b0=3.0, max_depth=6, seed=s))
            for s in range(8)
        }
        assert len(counts) > 1

    def test_children_depend_only_on_node_state(self):
        """Order-independence: re-generating children gives identical nodes."""
        inst = UTSInstance(shape="geometric", b0=3.0, max_depth=5, seed=2)
        spec = uts_spec(inst)
        first = list(spec.children_of(spec.root))
        second = list(spec.children_of(spec.root))
        assert first == second


class TestShapes:
    def test_geometric_depth_cutoff(self):
        inst = UTSInstance(shape="geometric", b0=4.0, max_depth=3, seed=1)
        spec = uts_spec(inst)
        stack = [spec.root]
        max_depth = 0
        while stack:
            node = stack.pop()
            max_depth = max(max_depth, node.depth)
            stack.extend(spec.children_of(node))
        assert max_depth <= 3

    def test_binomial_root_branching(self):
        inst = UTSInstance(shape="binomial", b0=50, m=4, q=0.1, seed=3)
        spec = uts_spec(inst)
        assert len(list(spec.children_of(spec.root))) == 50

    def test_binomial_inner_nodes_all_or_nothing(self):
        inst = UTSInstance(shape="binomial", b0=20, m=4, q=0.2, seed=4)
        spec = uts_spec(inst)
        for child in spec.children_of(spec.root):
            kids = list(spec.children_of(child))
            assert len(kids) in (0, 4)

    def test_binomial_tree_finite(self):
        inst = UTSInstance(shape="binomial", b0=100, m=5, q=0.15, seed=6)
        assert count_tree(inst) >= 101

    def test_irregularity(self):
        """Subtree sizes at depth 1 vary widely — the point of UTS."""
        inst = UTSInstance(shape="binomial", b0=30, m=6, q=0.15, seed=8)
        spec = uts_spec(inst)

        def size(node):
            total = 1
            for c in spec.children_of(node):
                total += size(c)
            return total

        sizes = [size(c) for c in spec.children_of(spec.root)]
        assert max(sizes) > min(sizes)


class TestObjective:
    def test_counts_every_node_once(self):
        inst = UTSInstance(shape="geometric", b0=2.5, max_depth=5, seed=9)
        spec = uts_spec(inst)

        def manual(node):
            return 1 + sum(manual(c) for c in spec.children_of(node))

        assert count_tree(inst) == manual(spec.root)
