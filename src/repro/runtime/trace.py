"""Execution traces: what every simulated worker did, and when.

The paper's performance story (§5) rests on being able to see workload
management behave: who starved, when steals happened, how fast the
system ramped up.  A :class:`Trace` collects per-worker task intervals
and knowledge events from a simulated run; :func:`render_gantt` and
:func:`utilisation_timeline` turn it into terminal-readable pictures.

Enable with ``SimulatedCluster(..., trace=True)``; the trace is attached
to the returned result as ``result.trace``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["TaskInterval", "Trace", "render_gantt", "utilisation_timeline"]


@dataclass(frozen=True)
class TaskInterval:
    """One task execution on one worker: [start, end) in virtual time."""

    worker: int
    start: float
    end: float
    nodes: int  # nodes the task processed


@dataclass
class Trace:
    """Everything observable about one simulated run's schedule."""

    workers: int
    intervals: list[TaskInterval] = field(default_factory=list)
    improvements: list[tuple[float, int]] = field(default_factory=list)  # (time, value)
    makespan: float = 0.0
    # Per-worker view of `intervals`, maintained so repeated per-worker
    # queries (the service metrics layer issues many) cost O(own
    # intervals) instead of scanning every interval each call.
    _by_worker: dict[int, list[TaskInterval]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _indexed: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("worker count must be >= 0")

    # -- recording (called by the executor) --------------------------------

    def record_interval(self, worker: int, start: float, end: float, nodes: int) -> None:
        """Record one task execution interval on ``worker``."""
        if not 0 <= worker < self.workers:
            raise ValueError(
                f"worker {worker} outside trace range [0, {self.workers})"
            )
        if end < start:
            raise ValueError("interval ends before it starts")
        self._index()  # keep the index current before extending it
        interval = TaskInterval(worker, start, end, nodes)
        self.intervals.append(interval)
        self._by_worker.setdefault(worker, []).append(interval)
        self._indexed += 1

    def record_improvement(self, time: float, value: int) -> None:
        """Record an incumbent strengthening at virtual ``time``."""
        self.improvements.append((time, value))

    # -- analysis -----------------------------------------------------------

    def _index(self) -> None:
        """Bring the per-worker index up to date with ``intervals``.

        ``intervals`` is a public list; callers may append to it
        directly, so the index is verified lazily (a length check) and
        only the new tail is folded in.
        """
        if self._indexed == len(self.intervals):
            return
        if self._indexed > len(self.intervals):  # intervals were replaced/truncated
            self._by_worker = {}
            self._indexed = 0
        for interval in self.intervals[self._indexed:]:
            self._by_worker.setdefault(interval.worker, []).append(interval)
        self._indexed = len(self.intervals)

    def busy_time(self, worker: int) -> float:
        """Total in-task time of ``worker`` across its intervals."""
        self._index()
        return sum(i.end - i.start for i in self._by_worker.get(worker, ()))

    def tasks_of(self, worker: int) -> list[TaskInterval]:
        """The worker's intervals, ordered by start time."""
        self._index()
        return sorted(self._by_worker.get(worker, ()), key=lambda i: i.start)

    def ramp_up_time(self) -> Optional[float]:
        """Time until every worker has run at least one task (None if
        some worker never worked — itself a diagnostic)."""
        first_start: dict[int, float] = {}
        for i in self.intervals:
            if i.worker not in first_start or i.start < first_start[i.worker]:
                first_start[i.worker] = i.start
        if len(first_start) < self.workers:
            return None
        return max(first_start.values())


def utilisation_timeline(trace: Trace, *, buckets: int = 20) -> list[float]:
    """Mean worker utilisation per time bucket over the makespan.

    The classic ramp-up/tail picture: early buckets show work
    distribution starting, late buckets show starvation as the workload
    drains.
    """
    if buckets < 1:
        raise ValueError("need at least one bucket")
    span = trace.makespan
    # A zero-worker trace has zero capacity: nothing can be utilised
    # (and record_interval guarantees it holds no intervals), so the
    # timeline is flat zero rather than a division by zero below.
    if span <= 0 or trace.workers == 0:
        return [0.0] * buckets
    width = span / buckets
    busy = [0.0] * buckets
    for interval in trace.intervals:
        b_lo = min(int(interval.start / width), buckets - 1)
        b_hi = min(int(interval.end / width), buckets - 1)
        for b in range(b_lo, b_hi + 1):
            lo = max(interval.start, b * width)
            hi = min(interval.end, (b + 1) * width)
            if hi > lo:
                busy[b] += hi - lo
    capacity = width * trace.workers
    return [min(1.0, b / capacity) for b in busy]


def render_gantt(trace: Trace, *, width: int = 72, max_workers: int = 32) -> str:
    """A text Gantt chart: one row per worker, '#' where it was busy.

    Rows are truncated to ``max_workers``; the footer shows the
    utilisation timeline ('0'-'9' deciles) and incumbent improvement
    marks ('*').
    """
    if width < 1:
        raise ValueError("need a chart at least one column wide")
    if max_workers < 0:
        raise ValueError("max_workers must be >= 0")
    span = trace.makespan
    lines = []
    if span <= 0:
        return "(empty trace)"
    scale = width / span
    for w in range(min(trace.workers, max_workers)):
        row = [" "] * width
        for i in trace.tasks_of(w):
            lo = min(int(i.start * scale), width - 1)
            hi = min(int(i.end * scale), width - 1)
            for c in range(lo, hi + 1):
                row[c] = "#"
        lines.append(f"w{w:<3d}|{''.join(row)}|")
    if trace.workers > max_workers:
        lines.append(f"... ({trace.workers - max_workers} more workers)")
    util = utilisation_timeline(trace, buckets=width)
    lines.append(
        "util|" + "".join(str(min(9, int(u * 10))) for u in util) + "|"
    )
    marks = [" "] * width
    for t, _ in trace.improvements:
        marks[min(int(t * scale), width - 1)] = "*"
    lines.append("inc |" + "".join(marks) + "|")
    # Footer ruler: clamp so narrow charts (width < 12) don't repeat the
    # dash string a negative number of times and misalign the axis.
    lines.append(f"      0 {'-' * max(0, width - 12)} {span:.0f}")
    return "\n".join(lines)
