"""Binary wire codec: fuzz roundtrips, cross-codec equivalence, strictness.

The contract under test is the one everything downstream relies on:
``decode_body(binary(m)) == decode_body(json(m)) == m`` for every
JSON-safe message ``m``, with every malformed body — truncated,
trailing bytes, unknown tags, lying length fields — rejected as
:class:`ProtocolError`, never a crash or a silently-wrong decode.

The fuzz suite is generator-driven off :class:`SplitMix64`, so every
run covers the same structured message space deterministically; a
failing seed is a complete bug report.
"""

import base64
import pickle

import pytest

from repro.cluster import codec as C
from repro.cluster import protocol as P
from repro.util.rng import SplitMix64

FRAME_TYPES = C.FRAME_TYPES

# Interned keys usable as *dict keys* in a generated message: the node
# collection tags ("__tuple__" etc.) would turn the message into a
# tagged node and change its decode, so they are filtered by name (the
# tags sit mid-tuple now that newer keys append after them).
_PLAIN_KEYS = tuple(k for k in C._KEYS if not k.startswith("__"))


# -- seeded message generator ------------------------------------------------


def _gen_value(rng: SplitMix64, depth: int):
    """One JSON-safe value, biased toward the shapes real frames carry."""
    roll = rng.randrange(14 if depth < 3 else 8)
    if roll == 0:
        return None
    if roll == 1:
        return bool(rng.randrange(2))
    if roll == 2:
        # Ints across widths and signs: zigzag varints must cover all.
        magnitude = rng.randrange(1 << (1 + rng.randrange(63)))
        return magnitude if rng.randrange(2) else -magnitude
    if roll == 3:
        return rng.randrange(1000) / 8.0  # exactly representable
    if roll == 4:
        return "k-" * rng.randrange(4) + str(rng.randrange(1000))
    if roll == 5:
        return "αβγ-" + str(rng.randrange(100))  # non-ASCII strings
    if roll == 6:
        # Interned strings hit the T_KEY value path.
        return C._KEYS[rng.randrange(len(C._KEYS))]
    if roll == 7:
        return "" if rng.randrange(2) else "x"
    if roll == 8:
        return [_gen_value(rng, depth + 1) for _ in range(rng.randrange(4))]
    if roll == 9:
        return {
            f"f{i}": _gen_value(rng, depth + 1)
            for i in range(rng.randrange(4))
        }
    if roll == 10:
        return {"__tuple__": [_gen_value(rng, depth + 1)
                              for _ in range(rng.randrange(3))]}
    if roll == 11:
        tag = "__set__" if rng.randrange(2) else "__frozenset__"
        return {tag: [rng.randrange(100) for _ in range(rng.randrange(3))]}
    if roll == 12:
        payload = bytes(rng.randrange(256) for _ in range(rng.randrange(20)))
        return {"__pickle__": base64.b64encode(payload).decode("ascii")}
    # A tagged key with the *wrong* inner shape must round-trip as a
    # plain dict, not corrupt into a collection tag.
    return {"__tuple__": _gen_value(rng, depth + 1)} \
        if rng.randrange(2) else {"__pickle__": rng.randrange(100)}


def _gen_message(rng: SplitMix64) -> dict:
    mtype = (
        FRAME_TYPES[rng.randrange(len(FRAME_TYPES))]
        if rng.randrange(4)
        else f"X_{rng.randrange(10)}"  # unregistered type: escape path
    )
    msg = {"type": mtype}
    for i in range(rng.randrange(6)):
        key = (
            _PLAIN_KEYS[rng.randrange(len(_PLAIN_KEYS))]
            if rng.randrange(2)
            else f"field_{i}"
        )
        if key == "type":
            continue
        msg[key] = _gen_value(rng, 0)
    return msg


# -- roundtrip + equivalence -------------------------------------------------


class TestFuzzRoundtrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_binary_matches_json_decode(self, seed):
        rng = SplitMix64(0xC0DEC + seed)
        for _ in range(200):
            msg = _gen_message(rng)
            via_binary = C.decode_body(C.BINARY_CODEC.encode(msg))
            via_json = C.decode_body(C.JSON_CODEC.encode(msg))
            assert via_binary == via_json == msg, msg

    @pytest.mark.parametrize("seed", range(4))
    def test_every_truncation_rejected(self, seed):
        rng = SplitMix64(0x7A7A + seed)
        for _ in range(25):
            body = C.BINARY_CODEC.encode(_gen_message(rng))
            for cut in range(len(body)):
                with pytest.raises(P.ProtocolError):
                    C.decode_body(body[:cut])

    @pytest.mark.parametrize("seed", range(4))
    def test_trailing_bytes_rejected(self, seed):
        rng = SplitMix64(0xBEEF + seed)
        for _ in range(50):
            body = C.BINARY_CODEC.encode(_gen_message(rng))
            with pytest.raises(P.ProtocolError):
                C.decode_body(body + b"\x00")

    def test_every_frame_type_tag_roundtrips(self):
        for name in FRAME_TYPES:
            body = C.BINARY_CODEC.encode({"type": name})
            assert C.decode_body(body) == {"type": name}
            # Registered types cost exactly magic + tag + field count.
            assert len(body) == 3

    def test_nodes_roundtrip_through_binary_frames(self):
        nodes = [
            (1, 2, 3),
            frozenset({5, 9}),
            {"s", "t"},
            [(1, frozenset({2})), None, True],
            ("nested", (set(), (0,))),
            {"plain": ["dict", 7]},
        ]
        for node in nodes:
            msg = {"type": P.TASK, "node": P.encode_node(node)}
            out = C.decode_body(C.BINARY_CODEC.encode(msg))
            assert P.decode_node(out["node"]) == node

    def test_pickle_fallback_roundtrips_raw(self):
        # Application node classes travel as T_PICKLE raw bytes and must
        # decode back to the exact tagged-base64 form JSON produces.
        payload = pickle.dumps(("opaque", 42))
        tagged = {"__pickle__": base64.b64encode(payload).decode("ascii")}
        msg = {"type": P.TASK, "node": tagged}
        assert C.decode_body(C.BINARY_CODEC.encode(msg)) == msg
        assert P.decode_node(tagged) == ("opaque", 42)

    def test_non_canonical_base64_survives_generic_path(self):
        # "ab" decodes but does not re-encode to itself; the T_PICKLE
        # shortcut must refuse it or the roundtrip would corrupt.
        msg = {"type": P.TASK, "node": {"__pickle__": "ab"}}
        assert C.decode_body(C.BINARY_CODEC.encode(msg)) == msg

    def test_extreme_ints(self):
        for v in (0, -1, 1, 2**63, -(2**63), 2**200, -(2**200) + 1):
            msg = {"type": P.RESULT, "value": v}
            assert C.decode_body(C.BINARY_CODEC.encode(msg)) == msg


class TestStealFrames:
    """STEAL/STOLEN (protocol v3) across both codecs.

    These frames are the stack-stealing coordination's entire wire
    surface, so they get targeted adversarial coverage on top of the
    generic fuzz: registered-tag compactness, node payload fidelity,
    and the empty-STOLEN ("dry") shape the coordinator keys off.
    """

    def test_steal_and_stolen_are_registered_frame_types(self):
        assert P.STEAL in C.FRAME_TYPES
        assert P.STOLEN in C.FRAME_TYPES
        # Registered: one byte of type tag, not an escaped string.
        assert len(C.BINARY_CODEC.encode({"type": P.STEAL})) == 3

    def test_steal_request_roundtrips_both_codecs(self):
        msg = {"type": P.STEAL, "job": 7}
        assert C.decode_body(C.BINARY_CODEC.encode(msg)) == msg
        assert C.decode_body(C.JSON_CODEC.encode(msg)) == msg

    def test_stolen_offcuts_roundtrip_identically(self):
        nodes = [
            P.encode_node((3, frozenset({1, 4}), "partial")),
            P.encode_node((5, frozenset(), "leaf")),
        ]
        msg = {
            "type": P.STOLEN, "job": 2, "task": 11, "epoch": 1,
            "depth": 4, "nodes": nodes,
        }
        via_binary = C.decode_body(C.BINARY_CODEC.encode(msg))
        via_json = C.decode_body(C.JSON_CODEC.encode(msg))
        assert via_binary == via_json == msg
        assert [P.decode_node(n) for n in via_binary["nodes"]] == [
            (3, frozenset({1, 4}), "partial"), (5, frozenset(), "leaf"),
        ]

    def test_empty_stolen_is_dry_not_malformed(self):
        # A victim with nothing to give answers with an empty node list
        # and no task/epoch — that exact shape must survive the wire.
        msg = {"type": P.STOLEN, "job": 2, "nodes": []}
        assert C.decode_body(C.BINARY_CODEC.encode(msg)) == msg
        assert C.decode_body(C.JSON_CODEC.encode(msg)) == msg

    @pytest.mark.parametrize("seed", range(4))
    def test_fuzzed_stolen_bodies_match_across_codecs(self, seed):
        rng = SplitMix64(0x57EA1 + seed)
        for _ in range(100):
            msg = {
                "type": P.STOLEN,
                "job": rng.randrange(1 << 32),
                "task": rng.randrange(1 << 48),
                "epoch": rng.randrange(1 << 16),
                "depth": rng.randrange(64),
                "nodes": [_gen_value(rng, 1) for _ in range(rng.randrange(5))],
            }
            assert (
                C.decode_body(C.BINARY_CODEC.encode(msg))
                == C.decode_body(C.JSON_CODEC.encode(msg))
                == msg
            )

    def test_truncated_stolen_rejected_at_every_cut(self):
        msg = {"type": P.STOLEN, "job": 1, "task": 2, "epoch": 0,
               "depth": 3, "nodes": [P.encode_node((1, 2))]}
        body = C.BINARY_CODEC.encode(msg)
        for cut in range(len(body)):
            with pytest.raises(P.ProtocolError):
                C.decode_body(body[:cut])

    def test_ordered_lease_bound_key_is_interned(self):
        # Ordered leases ride TASK frames with a 5th "bound" element and
        # v1 fallbacks carry a "bound" key — it must be in the intern
        # table (compact) and round-trip as the exact string.
        assert "bound" in C._KEYS
        msg = {"type": P.TASK, "job": 1, "bound": -17,
               "leases": [[4, 0, P.encode_node((1,)), 2, 9]]}
        assert C.decode_body(C.BINARY_CODEC.encode(msg)) == msg


class TestStrictDecode:
    def test_empty_body_rejected(self):
        with pytest.raises(P.ProtocolError):
            C.decode_body(b"")

    def test_unknown_value_tag_rejected(self):
        body = bytearray(C.BINARY_CODEC.encode({"type": P.HEARTBEAT}))
        body += bytes([C._KEY_INDEX["value"], 0x7F])
        body[2] = 1  # field count now claims one pair
        with pytest.raises(P.ProtocolError, match="unknown value tag"):
            C.decode_body(bytes(body))

    def test_unknown_frame_type_code_rejected(self):
        with pytest.raises(P.ProtocolError, match="frame-type"):
            C.decode_body(bytes([C.MAGIC, 0xE0, 0]))

    def test_unknown_key_code_rejected(self):
        with pytest.raises(P.ProtocolError, match="interned-key"):
            C.decode_body(bytes([C.MAGIC, 0, 1, 0xF0]))

    def test_oversized_counts_rejected(self):
        # A length/count field larger than the remaining bytes must be
        # rejected up front, not allocate or scan past the frame.
        for body in (
            # string claiming 2**20 bytes with 1 present
            bytes([C.MAGIC, 0, 1, C._KEY_INDEX["name"], C.T_STR,
                   0x80, 0x80, 0x40, ord("x")]),
            # list claiming 2**20 items with none present
            bytes([C.MAGIC, 0, 1, C._KEY_INDEX["nodes"], C.T_LIST,
                   0x80, 0x80, 0x40]),
            # field count claiming more pairs than bytes remain
            bytes([C.MAGIC, 0, 0x80, 0x80, 0x40]),
        ):
            with pytest.raises(P.ProtocolError):
                C.decode_body(body)

    def test_unbounded_varint_rejected(self):
        body = bytes([C.MAGIC, 0]) + b"\xff" * 200 + b"\x01"
        with pytest.raises(P.ProtocolError, match="varint"):
            C.decode_body(body)

    def test_invalid_utf8_rejected(self):
        body = bytes([C.MAGIC, C._TYPE_ESCAPE, 2, 0xFF, 0xFE, 0])
        with pytest.raises(P.ProtocolError, match="UTF-8"):
            C.decode_body(body)

    def test_json_body_still_validated(self):
        with pytest.raises(P.ProtocolError):
            C.decode_body(b"[1, 2]")  # not a message object
        with pytest.raises(P.ProtocolError):
            C.decode_body(b"{\"no_type\": 1}")
        with pytest.raises(P.ProtocolError):
            C.decode_body(b"not json at all")

    def test_magic_never_collides_with_json(self):
        # 0xB1 is an invalid UTF-8 lead byte: no JSON text starts with
        # it, so auto-detection cannot misroute a JSON body.
        assert C.JSON_CODEC.encode({"type": "X", "k": "αβ"})[0] != C.MAGIC

    def test_unencodable_value_rejected(self):
        with pytest.raises(P.ProtocolError, match="cannot encode"):
            C.BINARY_CODEC.encode({"type": "X", "v": object()})
        with pytest.raises(P.ProtocolError, match="string dict keys"):
            C.BINARY_CODEC.encode({"type": "X", "v": {1: 2}})


class TestNegotiation:
    def test_get_codec(self):
        assert C.get_codec("json") is C.JSON_CODEC
        assert C.get_codec("binary") is C.BINARY_CODEC
        with pytest.raises(P.ProtocolError, match="unknown wire codec"):
            C.get_codec("msgpack")

    def test_offered_codecs(self):
        assert C.offered_codecs("binary") == ["binary", "json"]
        assert C.offered_codecs("json") == ["json"]  # the debugging veto
        with pytest.raises(P.ProtocolError):
            C.offered_codecs("nope")

    def test_negotiate_prefers_coordinator_choice(self):
        assert C.negotiate(["binary", "json"], "binary") == "binary"
        assert C.negotiate(["binary", "json"], "json") == "json"
        assert C.negotiate(["json"], "binary") == "json"

    def test_negotiate_v1_peer_gets_json(self):
        assert C.negotiate(None, "binary") == "json"
        assert C.negotiate([], "binary") == "json"

    def test_negotiate_unknown_offers_fall_back(self):
        assert C.negotiate(["zstd"], "binary") == "json"
        assert C.negotiate(["zstd", "binary"], "binary") == "binary"
        assert C.negotiate([3, None, "json"], "binary") == "json"


class TestFraming:
    def test_frame_bytes_accepts_codec_names_and_objects(self):
        msg = {"type": P.HEARTBEAT}
        assert P.frame_bytes(msg, "binary") == P.frame_bytes(msg, C.BINARY_CODEC)
        assert P.frame_bytes(msg) == P.frame_bytes(msg, "json")

    def test_binary_frames_are_smaller_on_real_shapes(self):
        node = P.encode_node((1, frozenset({2, 3}), "state"))
        task = {"type": P.TASK, "job": 1,
                "leases": [[i, 0, node, 3] for i in range(4)]}
        assert len(C.BINARY_CODEC.encode(task)) < len(C.JSON_CODEC.encode(task))
