"""Cluster worker nodes: the fast-path search loop behind a TCP client.

A :class:`ClusterWorker` connects to a coordinator, pulls subtree TASK
leases, and searches each one with the same inlined hot loop the
multiprocessing budget backend uses (bound locals, plain generator
stack, periodic duties every ``share_poll`` nodes) — only the *edges*
of the loop changed: the shared queue became OFFCUT frames, the shared
incumbent integer became INCUMBENT frames, and the outstanding counter
lives on the coordinator.

Threading model (per connection):

- the **receiver** thread reads frames and updates cheap shared state:
  the current job context, the local task queue, the pruning bound (a
  plain int — atomic to read under the GIL), and the drain/done flags;
- the **heartbeat** thread sends HEARTBEAT at the interval the
  coordinator announced in WELCOME;
- the **main** thread runs the search loop, so incumbent updates and
  JOB_DONE aborts land mid-task without the search ever polling the
  socket itself.

Fault behaviour: if the connection dies mid-task the task is simply
abandoned — the coordinator's heartbeat watchdog re-leases it under a
new epoch, and anything this worker still sends about it is dropped as
stale.  The worker then reconnects with *capped, jittered* exponential
backoff: the delay doubles up to ``reconnect_max`` and each sleep is
scaled by a random factor in [0.5, 1.0], so a churning fleet of
respawned workers neither stalls for minutes on an unbounded backoff
nor reconnects in thundering-herd lockstep.  SHUTDOWN triggers a
graceful drain: finish the leased work, send the RESULTs, say BYE.
RETIRE (elastic scale-down, see :mod:`repro.deploy`) is stricter:
finish only the task already *in flight*, hand every unstarted lease
back in a RELEASE frame so the coordinator re-leases it under a bumped
epoch, then BYE and exit for good — no reconnect.

``run_worker`` is the process-level entry: one in-process worker, or a
fan-out of several local worker processes (each a full ClusterWorker)
that are stopped with the SIGTERM -> SIGKILL escalation of
:func:`repro.runtime.processes.graceful_stop` — the SIGTERM handler
installed here turns the first rung into an orderly abandon-and-BYE.
"""

from __future__ import annotations

import queue
import random
import signal
import socket
import sys
import threading
import time
from multiprocessing import Process
from typing import Optional

from repro.cluster import protocol as P
from repro.cluster.faults import WorkerFaults
from repro.core.ordered import run_task_fixed_bound
from repro.core.searchtypes import Incumbent
from repro.core.tasks import split_lowest_inlined, split_one_inlined
from repro.runtime.processes import graceful_stop, make_stype

__all__ = ["ClusterWorker", "run_worker"]


class _JobContext:
    """Worker-side state of one job: rebuilt spec/search type + knobs.

    ``bound`` is the incumbent value as last heard (written by the
    receiver thread, read lock-free by the search loop — the same
    stale-tolerant discipline as the shared integer in the
    multiprocessing backend); ``done`` flips when JOB_DONE arrives and
    is checked on the share_poll cadence to abort mid-task.
    """

    def __init__(self, msg: dict) -> None:
        self.id = msg["job"]
        factory = P.resolve_factory(msg["factory"])
        args = tuple(P.decode_node(msg.get("factory_args") or []))
        self.spec = factory(*args)
        self.stype = make_stype(
            msg["stype_kind"], dict(msg.get("stype_kwargs") or {})
        )
        self.enum = self.stype.kind == "enumeration"
        self.budget = max(1, int(msg.get("budget", 1000)))
        self.share_poll = max(1, int(msg.get("share_poll", 64)))
        # A v2 coordinator sends no coordination field: budget it is.
        self.coordination = str(msg.get("coordination") or "budget")
        self.chunked = bool(msg.get("chunked", True))
        best = msg.get("best")
        self.bound = best if isinstance(best, int) else 0
        self.done = False


class ClusterWorker:
    """One worker node.  ``run()`` blocks until drained or stopped.

    Args:
        host/port: the coordinator's address.
        name: reported in HELLO (diagnostics on the coordinator side).
        stop_event: optional ``threading.Event``; when set the worker
            abandons its current task and exits at the next poll (the
            SIGTERM hook for process fan-out).
        slots: concurrent leases to ask the coordinator for (leases
            beyond the one being searched sit in the local queue as
            prefetch; a RETIRE hands them back untouched).  The default
            of 2 double-buffers: while one task runs, its successor is
            already local, so finishing a task never stalls on a
            RESULT -> TASK round trip.
        wire_codec: preferred body format, offered in HELLO (the
            coordinator's own preference wins if this worker offers
            it).  ``"json"`` offers *only* JSON — the debugging veto.
        give_up_after: stop retrying (and raise) after this many seconds
            without reaching a coordinator; None retries forever.
        jitter: reconnect-jitter source returning floats in [0, 1)
            (injectable for deterministic tests; default
            ``random.random``).
        faults: optional :class:`~repro.cluster.faults.WorkerFaults`
            injection hooks (conformance chaos testing); defaults to
            whatever the ``REPRO_CHAOS`` environment variable names for
            this worker, i.e. nothing in normal operation.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        stop_event: Optional[threading.Event] = None,
        slots: int = 2,
        wire_codec: str = "binary",
        reconnect_initial: float = 0.1,
        reconnect_max: float = 2.0,
        give_up_after: Optional[float] = None,
        connect_timeout: float = 5.0,
        jitter=None,
        faults: Optional[WorkerFaults] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name or f"worker-{socket.gethostname()}"
        self._faults = faults if faults is not None else WorkerFaults.from_env(self.name)
        self.stop_event = stop_event
        self.slots = max(1, int(slots))
        self.wire_codec = P.get_codec(wire_codec).name
        self.reconnect_initial = reconnect_initial
        self.reconnect_max = reconnect_max
        self.give_up_after = give_up_after
        self.connect_timeout = connect_timeout
        self._jitter = jitter if jitter is not None else random.random
        self.worker_id: Optional[int] = None
        self.tasks_run = 0
        self.nodes_searched = 0
        self.sessions = 0
        self.retired = False
        self._finished = False
        # Per-session state (reset in _session):
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._session_dead = threading.Event()
        self._local_q: queue.Queue = queue.Queue()
        self._ctx: Optional[_JobContext] = None
        self._drain = False
        self._retire = False
        self._codec = None  # negotiated in WELCOME; None => JSON
        # The unanswered STEAL frame, if any (written by the receiver
        # thread, consumed by the search loop at share_poll cadence).
        self._steal_req: Optional[dict] = None
        # Monotonic time of the last frame that actually left.
        self._last_sent = 0.0  # guarded-by: _send_lock

    def _stopped(self) -> bool:
        return self.stop_event is not None and self.stop_event.is_set()

    # -- connection management ----------------------------------------------

    def reconnect_delay(self, backoff: float) -> float:
        """The actual sleep for one reconnect attempt: the exponential
        backoff value capped at ``reconnect_max``, scaled by a random
        factor in [0.5, 1.0).  The cap bounds how long a respawned
        worker can stall before rejoining under churn; the jitter
        decorrelates a fleet of workers all chasing the same restarted
        coordinator."""
        capped = min(backoff, self.reconnect_max)
        return capped * (0.5 + 0.5 * float(self._jitter()))

    def run(self) -> None:
        """Connect (and reconnect with capped, jittered exponential
        backoff) until a graceful drain/retire completes or the stop
        event fires."""
        backoff = self.reconnect_initial
        last_contact = time.monotonic()
        while not self._finished and not self._stopped():
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
            except OSError:
                if (
                    self.give_up_after is not None
                    and time.monotonic() - last_contact > self.give_up_after
                ):
                    raise ConnectionError(
                        f"no coordinator at {self.host}:{self.port} for "
                        f"{self.give_up_after:.1f}s; giving up"
                    ) from None
                delay = self.reconnect_delay(backoff)
                if self.stop_event is not None:
                    self.stop_event.wait(delay)
                else:
                    time.sleep(delay)
                backoff = min(backoff * 2, self.reconnect_max)
                continue
            backoff = self.reconnect_initial
            try:
                self._session(sock)
            except (ConnectionError, OSError, P.ProtocolError):
                pass  # session died: reconnect (leases reassigned by epoch)
            last_contact = time.monotonic()

    def _session(self, sock: socket.socket) -> None:
        """One connection lifetime: handshake, then search until EOF,
        drain, or stop."""
        self.sessions += 1
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._session_dead = threading.Event()
        self._local_q = queue.Queue()
        self._ctx = None
        self._drain = False
        self._retire = False
        self._steal_req = None
        self._codec = None  # the HELLO below must go out as JSON

        sock.settimeout(self.connect_timeout)
        self._send({
            "type": P.HELLO,
            "version": P.PROTOCOL_VERSION,
            "name": self.name,
            "slots": self.slots,
            "codecs": P.offered_codecs(self.wire_codec),
        })
        welcome = P.read_frame(sock)
        if welcome is None or welcome.get("type") != P.WELCOME:
            raise P.ProtocolError(f"expected WELCOME, got {welcome!r}")
        self.worker_id = welcome.get("worker")
        interval = float(welcome.get("heartbeat", 0.5))
        # A v1 coordinator sends no codec field: stay on JSON.
        self._codec = P.get_codec(welcome.get("codec") or "json")
        sock.settimeout(None)

        recv = threading.Thread(target=self._recv_loop, daemon=True)
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(interval,), daemon=True
        )
        recv.start()
        beat.start()
        try:
            self._search_loop()
        finally:
            self._session_dead.set()
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
            recv.join(timeout=2.0)
            beat.join(timeout=2.0)

    def _send(self, msg: dict) -> None:
        if self._faults is not None and self._faults.drop_outbound(msg["type"]):
            return  # chaos: the frame is lost on the (simulated) wire
        data = P.frame_bytes(msg, self._codec)
        with self._send_lock:
            self._sock.sendall(data)
            # Only a frame that actually left counts for heartbeat
            # suppression — a chaos-dropped one returned above.
            self._last_sent = time.monotonic()

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._session_dead.wait(interval):
            # repro: allow[lock-discipline] -- benign lock-free read of a monotonic float; worst case is one extra beat
            if time.monotonic() - self._last_sent < interval:
                # Any frame refreshes the coordinator's deadline, so a
                # busy worker (RESULTs, OFFCUTs, INCUMBENTs flowing)
                # needs no explicit beat — one fewer frame per cycle.
                # Checked before the chaos hook so suppression never
                # consumes a scripted beat delay.
                continue
            if self._faults is not None:
                pause = self._faults.next_beat_delay()
                if pause > 0:
                    time.sleep(pause)  # chaos: a beat arrives late
            try:
                self._send({"type": P.HEARTBEAT})
            except OSError:
                self._session_dead.set()
                return

    # -- receiving ----------------------------------------------------------

    def _recv_loop(self) -> None:
        try:
            while not self._session_dead.is_set():
                msg = P.read_frame(self._sock, self._codec)
                if msg is None:
                    break
                self._on_message(msg)
        except (ConnectionError, OSError, P.ProtocolError):
            pass
        finally:
            self._session_dead.set()

    def _on_message(self, msg: dict) -> None:
        mtype = msg.get("type")
        if mtype == P.JOB:
            try:
                self._ctx = _JobContext(msg)
            except Exception as exc:
                # Environment mismatch (factory missing here): stay
                # idle; the coordinator's job timeout is the backstop.
                print(
                    f"[{self.name}] cannot build job "
                    f"{msg.get('job')}: {exc}",
                    file=sys.stderr,
                )
                self._ctx = None
        elif mtype == P.TASK:
            ctx = self._ctx
            if ctx is not None and msg.get("job") == ctx.id and not ctx.done:
                # v2 batches up to `slots` leases per frame; a v1
                # coordinator sends the single-lease shape instead.
                # Ordered leases carry a 5th element, the pinned
                # starting bound (None = speculative).
                leases = msg.get("leases")
                if leases is None:
                    leases = [[
                        msg["task"],
                        msg["epoch"],
                        msg.get("node"),
                        msg.get("depth", 0),
                        msg.get("bound"),
                    ]]
                for lease in leases:
                    task_id, epoch, node, depth = lease[:4]
                    bound = lease[4] if len(lease) > 4 else None
                    self._local_q.put((
                        ctx, task_id, epoch, P.decode_node(node),
                        int(depth), bound,
                    ))
        elif mtype == P.STEAL:
            # Answered by the search loop: mid-task at the next
            # share_poll check (split the live stack), or immediately
            # with an empty STOLEN if we turn out to be idle.
            self._steal_req = msg
        elif mtype == P.INCUMBENT:
            ctx = self._ctx
            value = msg.get("value")
            if (
                ctx is not None
                and msg.get("job") == ctx.id
                and isinstance(value, int)
                and value > ctx.bound
            ):
                ctx.bound = value
        elif mtype == P.JOB_DONE:
            ctx = self._ctx
            if ctx is not None and msg.get("job") == ctx.id:
                ctx.done = True
        elif mtype == P.RETIRE:
            if self._faults is not None:
                # Chaos: may hard-exit here, dying mid-retire with its
                # leases live — the coordinator's crash re-lease path
                # must recover what the handback would have returned.
                self._faults.on_retire()
            self._retire = True
        elif mtype == P.SHUTDOWN:
            self._drain = True
        elif mtype == P.ERROR:
            # The coordinator rejected something we sent; surface the
            # reason (diagnosis only — the session keeps running, and
            # the lease-epoch machinery recovers any affected task).
            print(
                f"[{self.name}] coordinator error: "
                f"{msg.get('reason', 'unspecified')}",
                file=sys.stderr,
            )
        # HEARTBEAT and unknown types: nothing to do.

    # -- searching ----------------------------------------------------------

    def _search_loop(self) -> None:
        """Pull leased tasks and run them; exit on session death, stop,
        a completed drain, or a retire handback (BYE sent)."""
        while True:
            if self._session_dead.is_set():
                return
            if self._stopped():
                self._say_bye()
                return
            if self._retire:
                # Between tasks, so nothing is in flight: hand every
                # unstarted lease back and leave for good.  (A RETIRE
                # that lands mid-task reaches this check right after
                # that task's RESULT is sent.)
                self._release_unstarted()
                self._say_bye()
                self.retired = True
                self._finished = True
                return
            if self._steal_req is not None:
                # Idle between tasks: nothing on a live stack to give.
                self._answer_steal_empty()
            try:
                item = self._local_q.get(timeout=0.05)
            except queue.Empty:
                if self._drain:
                    # Drain complete: no leases left to finish.
                    self._say_bye()
                    self._finished = True
                    return
                continue
            ctx, task_id, epoch, node, depth, bound = item
            if ctx.done or ctx is not self._ctx:
                continue
            try:
                self._run_task(ctx, task_id, epoch, node, depth, bound)
            except (ConnectionError, OSError):
                self._session_dead.set()
                return

    def _say_bye(self) -> None:
        try:
            self._send({"type": P.BYE})
        except OSError:
            pass

    def _answer_steal_empty(self) -> None:
        """Decline a STEAL: no live stack to carve anything from."""
        req = self._steal_req
        self._steal_req = None
        if req is None:
            return
        try:
            self._send({"type": P.STOLEN, "job": req.get("job"), "nodes": []})
        except OSError:
            self._session_dead.set()

    def _release_unstarted(self) -> None:
        """RELEASE every lease still sitting in the local queue.

        Only tasks this worker never *started* are returned — the
        coordinator re-leases them under a bumped epoch, so the handback
        is exact for every search type (no partial accumulator exists
        for work that never began)."""
        returned: list[list] = []
        ctx = self._ctx
        while True:
            try:
                item_ctx, task_id, epoch, _node, _depth = self._local_q.get_nowait()
            except queue.Empty:
                break
            if ctx is not None and item_ctx is ctx and not ctx.done:
                returned.append([task_id, epoch])
        if returned and ctx is not None:
            try:
                self._send({"type": P.RELEASE, "job": ctx.id, "tasks": returned})
            except OSError:
                pass  # crash path: the lease epochs cover us anyway

    def _run_task(self, ctx, task_id, epoch, root, root_depth, bound=None) -> None:
        """Search one leased subtree with the inlined fast-path loop.

        Budget jobs send OFFCUT on budget trips; stack-stealing jobs
        answer STEAL requests with STOLEN splits instead; both send
        INCUMBENT (value + witness) on strict improvements and RESULT on
        completion.  Ordered jobs take the replicable fixed-bound path.
        Nothing is sent if the task is aborted (job done / stop /
        session death), leaving the coordinator's lease accounting to
        handle it.
        """
        if self._faults is not None:
            # Chaos: may hard-exit here, dying with this lease live so
            # the coordinator's epoch/re-lease path has to recover it.
            self._faults.on_task_start(self.tasks_run + 1)
        if ctx.coordination == "ordered":
            self._run_ordered_task(ctx, task_id, epoch, root, root_depth, bound)
            return
        stacksteal = ctx.coordination == "stacksteal"
        split = split_lowest_inlined if ctx.chunked else split_one_inlined
        spec, stype, enum = ctx.spec, ctx.stype, ctx.enum
        budget, share_poll = ctx.budget, ctx.share_poll
        process = stype.process
        is_goal = stype.is_goal
        should_prune = (
            stype.should_prune if (not enum and spec.can_prune) else None
        )
        generator = spec.generator
        space = spec.space

        if enum:
            knowledge = stype.initial_knowledge(spec)  # the monoid zero
            prune_know = None
        else:
            knowledge = None
            # Seed pruning from the last-heard cluster-wide bound; the
            # witness is unknown here, but pruning only compares values.
            bound_val = max(stype.initial_knowledge(spec).value, ctx.bound)
            prune_know = Incumbent(bound_val, None)

        nodes = prunes = backtracks = max_depth = 0
        task_nodes = 0  # counted in share_poll quanta, drives splitting
        since_check = 0
        goal_hit = False

        def publish(inc: Incumbent) -> None:
            # A strict local improvement: raise the local bound, ship
            # value + witness upstream (the witness travels with the
            # publish so a later crash of this worker cannot orphan it).
            if inc.value > ctx.bound:
                ctx.bound = inc.value
            self._send({
                "type": P.INCUMBENT,
                "job": ctx.id,
                "value": inc.value,
                "node": P.encode_node(inc.node),
            })

        # -- process the task root (the (schedule) rule) --
        nodes += 1
        expand = True
        if enum:
            knowledge, _ = process(spec, root, knowledge)
        else:
            k2, improved = process(spec, root, prune_know)
            if improved:
                prune_know = k2
                publish(k2)
                if is_goal(k2):
                    goal_hit = True
            if not goal_hit and should_prune is not None and should_prune(
                spec, root, prune_know
            ):
                prunes += 1
                expand = False

        if expand and not goal_hit:
            stack = [generator(space, root)]
            if root_depth + 1 > max_depth:
                max_depth = root_depth + 1
            # -- the inlined hot loop --
            while stack:
                gen = stack[-1]
                if gen.has_next():
                    child = gen.next()
                    nodes += 1
                    since_check += 1
                    if enum:
                        knowledge, _ = process(spec, child, knowledge)
                        stack.append(generator(space, child))
                        if root_depth + len(stack) > max_depth:
                            max_depth = root_depth + len(stack)
                    else:
                        k2, improved = process(spec, child, prune_know)
                        if improved:
                            prune_know = k2
                            publish(k2)
                            if is_goal(k2):
                                goal_hit = True
                                break
                        if should_prune is not None and should_prune(
                            spec, child, prune_know
                        ):
                            prunes += 1
                        else:
                            stack.append(generator(space, child))
                            if root_depth + len(stack) > max_depth:
                                max_depth = root_depth + len(stack)
                else:
                    stack.pop()
                    backtracks += 1
                if since_check >= share_poll:
                    # Periodic duties, off the per-node path: abort
                    # check, bound refresh, budget split.
                    task_nodes += since_check
                    since_check = 0
                    if (
                        ctx.done
                        or self._session_dead.is_set()
                        or self._stopped()
                    ):
                        return  # abandon: lease accounting covers us
                    if not enum:
                        seen = ctx.bound
                        if seen > prune_know.value:
                            prune_know = Incumbent(seen, None)
                    if stacksteal:
                        if self._steal_req is not None:
                            self._steal_req = None
                            offcuts, frame_index = split(stack)
                            self._send({
                                "type": P.STOLEN,
                                "job": ctx.id,
                                "task": task_id,
                                "epoch": epoch,
                                "depth": root_depth + frame_index + 1,
                                "nodes": [P.encode_node(o) for o in offcuts],
                            })
                    elif task_nodes >= budget:
                        offcuts, frame_index = split_lowest_inlined(stack)
                        if offcuts:
                            self._send({
                                "type": P.OFFCUT,
                                "job": ctx.id,
                                "task": task_id,
                                "epoch": epoch,
                                "depth": root_depth + frame_index + 1,
                                "nodes": [P.encode_node(o) for o in offcuts],
                            })
                        task_nodes = 0

        self.tasks_run += 1
        self.nodes_searched += nodes
        result = {
            "type": P.RESULT,
            "job": ctx.id,
            "task": task_id,
            "epoch": epoch,
            "nodes": nodes,
            "prunes": prunes,
            "backtracks": backtracks,
            "max_depth": max_depth,
            "goal": goal_hit,
        }
        if enum:
            result["knowledge"] = knowledge
        elif prune_know.node is not None:
            # Belt and braces: improvements were already published with
            # their witnesses, but repeat the task-local best anyway.
            result["value"] = prune_know.value
            result["node"] = P.encode_node(prune_know.node)
        self._send(result)

    def _run_ordered_task(
        self, ctx, task_id, epoch, root, root_depth, bound
    ) -> None:
        """One replicable Ordered task: a pure function of (root, bound).

        The lease either pins the bound (a ledger-demanded re-run) or
        leaves it None — speculative, in which case the last-heard
        finalised-prefix best is used and echoed back in the RESULT so
        the coordinator's ledger can check it against the required
        bound at finalisation time.  No INCUMBENT is ever published
        mid-task; the ledger is the only incumbent authority.
        """
        if not ctx.enum and bound is None:
            bound = ctx.bound
        payload = run_task_fixed_bound(
            ctx.spec,
            ctx.stype,
            root,
            root_depth,
            None if ctx.enum else bound,
            poll=ctx.share_poll,
            should_abort=lambda: (
                ctx.done or self._session_dead.is_set() or self._stopped()
            ),
        )
        if payload is None:
            return  # aborted: lease accounting covers us
        self.tasks_run += 1
        self.nodes_searched += payload["nodes"]
        result = {
            "type": P.RESULT,
            "job": ctx.id,
            "task": task_id,
            "epoch": epoch,
            "nodes": payload["nodes"],
            "prunes": payload["prunes"],
            "backtracks": payload["backtracks"],
            "max_depth": payload["max_depth"],
            "goal": payload["goal"],
        }
        if ctx.enum:
            result["knowledge"] = payload["knowledge"]
        else:
            result["bound"] = bound
            result["value"] = payload["value"]
            result["node"] = P.encode_node(payload["node"])
        self._send(result)


# -- process fan-out ---------------------------------------------------------


def _worker_process_main(
    host, port, name, give_up_after, chaos_events=None, slots=2,
    wire_codec="binary",
) -> None:
    """Entry point of one fanned-out worker process.

    SIGTERM — the first rung of :func:`graceful_stop` — sets the stop
    event, so the worker abandons its current task (the coordinator
    re-leases it) and exits at the next poll instead of dying mid-write.

    ``chaos_events`` optionally carries a FaultPlan's event list (see
    :mod:`repro.cluster.faults`); events addressed to ``name`` become
    this worker's injection hooks.
    """
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    worker = ClusterWorker(
        host, port, name=name, stop_event=stop, slots=slots,
        wire_codec=wire_codec, give_up_after=give_up_after,
        faults=WorkerFaults.from_events(chaos_events, name),
    )
    try:
        worker.run()
    except ConnectionError:
        raise SystemExit(1)


def run_worker(
    host: str,
    port: int,
    *,
    processes: int = 1,
    name: Optional[str] = None,
    stop_event: Optional[threading.Event] = None,
    give_up_after: Optional[float] = None,
    wire_codec: str = "binary",
) -> None:
    """Run worker capacity against a coordinator (blocking).

    With ``processes == 1`` the worker runs in this process.  With more,
    each becomes its own OS process (its own interpreter, so searches
    run truly in parallel) and this call supervises them: it returns
    when all children exit (drain) and stops them with the
    SIGTERM -> SIGKILL escalation on interrupt.
    """
    if processes < 1:
        raise ValueError("need at least one worker process")
    if processes == 1:
        ClusterWorker(
            host,
            port,
            name=name,
            stop_event=stop_event,
            give_up_after=give_up_after,
            wire_codec=wire_codec,
        ).run()
        return
    base = name or f"worker-{socket.gethostname()}"
    procs = [
        Process(
            target=_worker_process_main,
            args=(host, port, f"{base}-{i}", give_up_after, None, 2, wire_codec),
            daemon=True,
        )
        for i in range(processes)
    ]
    for p in procs:
        p.start()
    try:
        while any(p.is_alive() for p in procs):
            if stop_event is not None and stop_event.is_set():
                break
            for p in procs:
                p.join(timeout=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        for p in procs:
            graceful_stop(p, grace=2.0)
