"""Tests for the content-addressed result cache and coalescing registry."""

import pytest

from repro.core.results import SearchResult
from repro.service.cache import ResultCache


def result(value):
    return SearchResult(kind="optimisation", value=value, node=("n",))


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestLRU:
    def test_get_put_round_trip(self):
        c = ResultCache(capacity=4)
        c.put("k1", result(7))
        assert c.get("k1").value == 7
        assert c.hits == 1 and c.misses == 0

    def test_miss_counted(self):
        c = ResultCache()
        assert c.get("nope") is None
        assert c.misses == 1
        assert c.hit_rate() == 0.0

    def test_eviction_order_is_least_recently_used(self):
        c = ResultCache(capacity=2)
        c.put("a", result(1))
        c.put("b", result(2))
        c.get("a")  # refresh a; b is now LRU
        c.put("c", result(3))
        assert "a" in c and "c" in c
        assert "b" not in c

    def test_hit_rate_none_before_lookups(self):
        assert ResultCache().hit_rate() is None

    def test_bad_capacity_and_ttl(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(ttl=0)


class TestTTL:
    def test_entries_expire(self):
        clock = FakeClock()
        c = ResultCache(ttl=10.0, clock=clock)
        c.put("k", result(1))
        clock.now = 9.9
        assert c.get("k") is not None
        clock.now = 10.0
        assert c.get("k") is None  # expired: counted as a miss
        assert c.hits == 1 and c.misses == 1

    def test_contains_respects_ttl(self):
        clock = FakeClock()
        c = ResultCache(ttl=5.0, clock=clock)
        c.put("k", result(1))
        assert "k" in c
        clock.now = 6.0
        assert "k" not in c

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        c = ResultCache(clock=clock)
        c.put("k", result(1))
        clock.now = 1e9
        assert c.get("k") is not None


class TestCoalescing:
    def test_lead_join_finish(self):
        c = ResultCache()
        c.lead("k", "j1")
        assert c.leader_of("k") == "j1"
        assert c.join("k", "j2") == "j1"
        assert c.join("k", "j3") == "j1"
        assert c.finish("k") == ["j2", "j3"]
        assert c.leader_of("k") is None

    def test_double_lead_rejected(self):
        c = ResultCache()
        c.lead("k", "j1")
        with pytest.raises(ValueError):
            c.lead("k", "j2")

    def test_finish_is_idempotent(self):
        c = ResultCache()
        assert c.finish("unknown") == []

    def test_drop_follower(self):
        c = ResultCache()
        c.lead("k", "j1")
        c.join("k", "j2")
        assert c.drop_follower("k", "j2") is True
        assert c.drop_follower("k", "j2") is False
        assert c.finish("k") == []

    def test_coalesced_hit_counts_toward_hit_rate(self):
        c = ResultCache()
        c.get("k")  # miss
        c.record_coalesced_hit()
        assert c.hit_rate() == pytest.approx(0.5)


class TestTTLRacingInFlight:
    """TTL expiry interleaved with coalescing: the two registries are
    independent by design, and these pin the edges of that contract."""

    def test_expiry_then_recompute_race(self):
        # t=0: result cached.  t=20: it has expired; the next submitter
        # misses, becomes leader, and a duplicate joins mid-flight.  The
        # stale entry must not resurrect anywhere in the window.
        clock = FakeClock()
        c = ResultCache(ttl=10.0, clock=clock)
        c.put("k", result(1))
        clock.now = 20.0
        assert c.get("k") is None
        c.lead("k", "j-new")
        assert c.join("k", "j-dup") == "j-new"
        assert c.get("k") is None  # still in flight: stays a miss
        assert c.finish("k") == ["j-dup"]
        c.put("k", result(2))
        assert c.get("k").value == 2

    def test_entry_expires_while_leader_in_flight(self):
        # A still-valid entry can coexist with an in-flight leader (the
        # leader started during an expired window, then a put landed).
        # Expiry of the entry mid-flight must not eat the followers.
        clock = FakeClock()
        c = ResultCache(ttl=10.0, clock=clock)
        c.lead("k", "j1")
        c.join("k", "j2")
        c.put("k", result(1))  # e.g. warmed by an admin preload
        clock.now = 11.0  # entry expires while j1 still runs
        assert c.get("k") is None
        assert c.finish("k") == ["j2"]  # coalescing unaffected by TTL

    def test_leader_slot_reusable_after_finish_despite_expiry(self):
        clock = FakeClock()
        c = ResultCache(ttl=5.0, clock=clock)
        c.lead("k", "j1")
        c.finish("k")
        clock.now = 100.0
        c.lead("k", "j2")  # no stale in-flight state survives
        assert c.leader_of("k") == "j2"

    def test_follower_dropped_mid_race_not_fanned_out(self):
        clock = FakeClock()
        c = ResultCache(ttl=10.0, clock=clock)
        c.lead("k", "j1")
        c.join("k", "j2")
        c.join("k", "j3")
        clock.now = 15.0  # expiry happens while followers wait
        assert c.drop_follower("k", "j2") is True
        assert c.finish("k") == ["j3"]

    def test_lru_eviction_does_not_touch_inflight(self):
        c = ResultCache(capacity=1)
        c.lead("k1", "j1")
        c.put("k1", result(1))
        c.put("k2", result(2))  # evicts k1's entry
        assert c.get("k1") is None
        assert c.leader_of("k1") == "j1"  # the flight is not an entry
