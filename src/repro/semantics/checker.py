"""Reduction-sequence checking: is a run a legal derivation?

The machine in :mod:`repro.semantics.machine` *generates* reductions;
this module *validates* them.  Given two configurations, `judge`
decides whether ``cfg -> cfg'`` holds under the paper's rules — i.e.
whether some thread could have made that step — and names the rule.
`check_run` validates a whole configuration sequence and, along the
way, re-verifies the invariants the correctness proofs rest on:

- node conservation: only (terminate) and (prune) remove nodes, and
  (shortcircuit) may clear everything;
- the termination measure never increases (Theorem 3.3's multiset
  argument, summarised as a total count);
- knowledge monotonicity for optimisation/decision searches.

This is the executable analogue of checking a pencil-and-paper
derivation, and it is used in tests to certify that the machine's own
`step` only ever takes legal reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.semantics.machine import (
    DECISION,
    ENUMERATION,
    Configuration,
    SearchProblem,
)

__all__ = ["Judgement", "judge", "check_run"]


@dataclass(frozen=True)
class Judgement:
    """The verdict on one candidate reduction step."""

    legal: bool
    rule: Optional[str] = None  # e.g. "traverse+process@2", "spawn@0"
    reason: Optional[str] = None  # why it was rejected


def _thread_nodes(th) -> frozenset:
    return th.task.nodes if th is not None else frozenset()


def _all_nodes(cfg: Configuration) -> list:
    """Multiset of nodes across tasks and threads (as a sorted list)."""
    out = []
    for t in cfg.tasks:
        out.extend(t.nodes)
    for th in cfg.threads:
        if th is not None:
            out.extend(th.task.nodes)
    return sorted(out)


def _changed_threads(a: Configuration, b: Configuration) -> list[int]:
    return [i for i in range(len(a.threads)) if a.threads[i] != b.threads[i]]


def judge(problem: SearchProblem, a: Configuration, b: Configuration) -> Judgement:
    """Decide whether ``a -> b`` is one legal reduction.

    Covers the composed step shapes the machine takes: a traversal
    reduction followed by node processing (possibly preceded by a
    schedule), a prune, a shortcircuit, or a spawn.  Exactly one thread
    may change (spawns also change the queue).
    """
    if len(a.threads) != len(b.threads):
        return Judgement(False, reason="thread count changed")

    changed = _changed_threads(a, b)
    tasks_a, tasks_b = list(a.tasks), list(b.tasks)

    # (shortcircuit): everything cleared, knowledge unchanged, and the
    # incumbent must sit at the monoid's greatest element.
    if not tasks_b and all(t is None for t in b.threads) and (
        tasks_a or any(t is not None for t in a.threads)
    ):
        if problem.kind == DECISION and a.knowledge == b.knowledge:
            if problem.objective(a.knowledge) == problem.monoid.greatest():
                return Judgement(True, rule="shortcircuit")

    if len(changed) > 1:
        return Judgement(False, reason=f"threads {changed} changed at once")

    # (spawn*): same thread node, subtree(s) moved from thread to queue tail.
    if len(tasks_b) > len(tasks_a):
        if tasks_b[: len(tasks_a)] != tasks_a:
            return Judgement(False, reason="spawn must append to the queue tail")
        if len(changed) != 1:
            return Judgement(False, reason="spawn must come from one thread")
        i = changed[0]
        th_a, th_b = a.threads[i], b.threads[i]
        if th_a is None or th_b is None:
            return Judgement(False, reason="spawning thread must stay active")
        if th_a.node != th_b.node:
            return Judgement(False, reason="spawn must not move the thread")
        new_tasks = tasks_b[len(tasks_a) :]
        moved = set()
        for t in new_tasks:
            if not t.nodes <= th_a.task.nodes:
                return Judgement(False, reason="spawned nodes not from the thread")
            for u in t.nodes:
                if not th_a.task.tree.before(th_a.node, u):
                    return Judgement(False, reason="spawned an explored node")
            moved |= set(t.nodes)
        if set(th_b.task.nodes) != set(th_a.task.nodes) - moved:
            return Judgement(False, reason="thread kept or lost wrong nodes")
        if a.knowledge != b.knowledge:
            return Judgement(False, reason="spawn must not change knowledge")
        return Judgement(True, rule=f"spawn@{changed[0]}")

    if len(tasks_b) < len(tasks_a):
        # (schedule)+process: head task moved onto an idle thread.
        if tasks_a[1:] != tasks_b:
            return Judgement(False, reason="schedule must pop the queue head")
        if len(changed) != 1:
            return Judgement(False, reason="schedule must fill one thread")
        i = changed[0]
        if a.threads[i] is not None:
            return Judgement(False, reason="scheduled onto a busy thread")
        th_b = b.threads[i]
        if th_b is None or th_b.task != tasks_a[0] or th_b.node != tasks_a[0].root:
            return Judgement(False, reason="scheduled thread malformed")
        return _judge_processing(problem, a, b, th_b.node, f"schedule+process@{i}")

    # queue unchanged: traversal, prune, or a no-move processing artifact.
    if not changed:
        return Judgement(False, reason="nothing changed")
    i = changed[0]
    th_a, th_b = a.threads[i], b.threads[i]
    if th_a is None:
        return Judgement(False, reason="idle thread cannot move")

    if th_b is None:  # (terminate) (+noop)
        if th_a.task.next(th_a.node) is not None:
            return Judgement(False, reason="terminated with work remaining")
        if a.knowledge != b.knowledge:
            return Judgement(False, reason="terminate must not change knowledge")
        return Judgement(True, rule=f"terminate@{i}")

    if th_b.task == th_a.task and th_b.node != th_a.node:
        # (expand)/(backtrack) + processing of the new node.
        expected = th_a.task.next(th_a.node)
        if th_b.node != expected:
            return Judgement(False, reason="moved to a non-successor node")
        prefix = th_b.node[: len(th_a.node)] == th_a.node and len(th_b.node) > len(
            th_a.node
        )
        if prefix and th_b.backtracks != th_a.backtracks:
            return Judgement(False, reason="expand must keep the backtrack count")
        if not prefix and th_b.backtracks not in (
            th_a.backtracks + 1,
            0,  # budget coordination resets after spawning
        ):
            return Judgement(False, reason="backtrack must increment the counter")
        kind = "expand" if prefix else "backtrack"
        return _judge_processing(problem, a, b, th_b.node, f"{kind}+process@{i}")

    if th_b.node == th_a.node and th_b.task != th_a.task:
        # (prune): subtree(S, v) \ {v} removed.
        if problem.prunes is None:
            return Judgement(False, reason="pruning without a |> relation")
        removed = set(th_a.task.nodes) - set(th_b.task.nodes)
        doomed = set(th_a.task.subtree(th_a.node).nodes) - {th_a.node}
        if not removed or removed != doomed:
            return Judgement(False, reason="prune removed the wrong nodes")
        if not problem.prunes(a.knowledge, th_a.node):
            return Judgement(False, reason="prune not justified by |>")
        if a.knowledge != b.knowledge:
            return Judgement(False, reason="prune must not change knowledge")
        return Judgement(True, rule=f"prune@{i}")

    return Judgement(False, reason="unrecognised step shape")


def _judge_processing(
    problem: SearchProblem, a: Configuration, b: Configuration, node, rule: str
) -> Judgement:
    """Validate the ->N half of a composed traversal step."""
    h, monoid = problem.objective, problem.monoid
    if problem.kind == ENUMERATION:
        expected = monoid.plus(a.knowledge, h(node))
        if b.knowledge != expected:
            return Judgement(False, reason="accumulate produced the wrong sum")
    else:
        if monoid.leq(h(node), h(a.knowledge)):
            if b.knowledge != a.knowledge:
                return Judgement(False, reason="skip must keep the incumbent")
        else:
            if b.knowledge != node:
                return Judgement(False, reason="strengthen must adopt the node")
    return Judgement(True, rule=rule)


def check_run(
    problem: SearchProblem, run: list[Configuration]
) -> list[Judgement]:
    """Validate a configuration sequence; raises on the first illegal
    step or broken invariant, returns the per-step judgements."""
    judgements = []
    for step, (a, b) in enumerate(zip(run, run[1:])):
        verdict = judge(problem, a, b)
        if not verdict.legal:
            raise AssertionError(f"illegal step {step}: {verdict.reason}")
        if b.live_nodes() > a.live_nodes():
            raise AssertionError(f"step {step} increased the termination measure")
        if problem.kind != ENUMERATION:
            if problem.monoid.leq(
                problem.objective(b.knowledge), problem.objective(a.knowledge)
            ) and problem.objective(b.knowledge) != problem.objective(a.knowledge):
                raise AssertionError(f"step {step} regressed the incumbent")
        judgements.append(verdict)
    return judgements
