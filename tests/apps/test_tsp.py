"""Tests for TSP: instance validation, bound admissibility, brute force."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.tsp import TSPInstance, tour_length, tsp_spec
from repro.core.searchtypes import Optimisation
from repro.core.sequential import sequential_search
from repro.instances.library import random_tsp


def brute_force_optimum(inst: TSPInstance) -> int:
    best = None
    for perm in itertools.permutations(range(1, inst.n)):
        length = tour_length(inst, (0,) + perm)
        best = length if best is None else min(best, length)
    return best


instances = st.builds(
    random_tsp,
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=0, max_value=300),
)


class TestInstanceValidation:
    def test_asymmetric_rejected(self):
        with pytest.raises(ValueError):
            TSPInstance(((0, 1), (2, 0)))

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(ValueError):
            TSPInstance(((1,),))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TSPInstance(((0, -1), (-1, 0)))

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            TSPInstance(((0, 1, 2), (1, 0, 3)))

    def test_from_points_symmetric(self):
        inst = TSPInstance.from_points([(0, 0), (3, 4), (6, 8)])
        assert inst.dist[0][1] == 5
        assert inst.dist[1][0] == 5
        assert inst.dist[0][2] == 10

    def test_ub_total_exceeds_any_tour(self):
        inst = random_tsp(6, 1)
        assert inst.ub_total() > brute_force_optimum(inst)


class TestTourLength:
    def test_triangle(self):
        inst = TSPInstance(((0, 1, 2), (1, 0, 3), (2, 3, 0)))
        assert tour_length(inst, (0, 1, 2)) == 1 + 3 + 2

    def test_rejects_partial_tour(self):
        inst = random_tsp(4, 2)
        with pytest.raises(ValueError):
            tour_length(inst, (0, 1))


class TestGenerator:
    def test_children_nearest_first(self):
        inst = random_tsp(6, 3)
        spec = tsp_spec(inst)
        children = list(spec.children_of(spec.root))
        costs = [c.cost for c in children]
        assert costs == sorted(costs)

    def test_children_extend_by_unvisited(self):
        inst = random_tsp(5, 4)
        spec = tsp_spec(inst)
        for child in spec.children_of(spec.root):
            assert len(child.tour) == 2
            assert child.tour[0] == 0

    def test_leaf_nodes_are_complete_tours(self):
        inst = random_tsp(4, 5)
        spec = tsp_spec(inst)
        stack, leaves = [spec.root], []
        while stack:
            node = stack.pop()
            kids = list(spec.children_of(node))
            if kids:
                stack.extend(kids)
            else:
                leaves.append(node)
        assert len(leaves) == 6  # 3! permutations of the other cities
        for leaf in leaves:
            assert sorted(leaf.tour) == list(range(4))


class TestBoundAdmissibility:
    @settings(max_examples=25, deadline=None)
    @given(instances)
    def test_bound_dominates_descendant_objectives(self, inst):
        spec = tsp_spec(inst)
        # Collect objectives of all complete tours under each node and
        # compare with the node's bound.
        def complete_objs(node):
            kids = list(spec.children_of(node))
            if not kids:
                return [spec.objective(node)]
            out = []
            for k in kids:
                out.extend(complete_objs(k))
            return out

        stack = [spec.root]
        while stack:
            node = stack.pop()
            bound = spec.bound(node)
            for obj in complete_objs(node):
                assert bound >= obj
            stack.extend(spec.children_of(node))


class TestSearchCorrectness:
    @settings(max_examples=25, deadline=None)
    @given(instances)
    def test_matches_brute_force(self, inst):
        res = sequential_search(tsp_spec(inst), Optimisation())
        assert inst.ub_total() - res.value == brute_force_optimum(inst)

    def test_witness_is_valid_tour(self):
        inst = random_tsp(8, 11)
        res = sequential_search(tsp_spec(inst), Optimisation())
        assert sorted(res.node.tour) == list(range(8))
        assert tour_length(inst, res.node.tour) == inst.ub_total() - res.value

    def test_pruning_happens(self):
        inst = random_tsp(9, 12)
        res = sequential_search(tsp_spec(inst), Optimisation())
        assert res.metrics.prunes > 0

    def test_two_cities(self):
        inst = random_tsp(2, 13)
        res = sequential_search(tsp_spec(inst), Optimisation())
        assert inst.ub_total() - res.value == 2 * inst.dist[0][1]
