"""Tests for ordered tree generators and T_g construction (paper §3.1)."""

import pytest

from repro.semantics.generators import tree_of_generator
from repro.semantics.words import EPSILON


class TestTreeOfGenerator:
    def test_trivial_generator(self):
        t = tree_of_generator(lambda w: "")
        assert len(t) == 1

    def test_binary_tree(self):
        t = tree_of_generator(lambda w: "ab" if len(w) < 2 else "")
        assert len(t) == 1 + 2 + 4

    def test_sibling_order_from_generator_output(self):
        t = tree_of_generator(lambda w: "ba" if w == EPSILON else "")
        assert t.children(EPSILON) == (("b",), ("a",))
        assert t.before(("b",), ("a",))

    def test_irregular_generator(self):
        def g(w):
            if w == EPSILON:
                return "ab"
            if w == ("a",):
                return "c"
            return ""

        t = tree_of_generator(g)
        assert set(t.nodes) == {EPSILON, ("a",), ("b",), ("a", "c")}

    def test_non_isogram_rejected(self):
        with pytest.raises(ValueError):
            tree_of_generator(lambda w: "aa" if w == EPSILON else "")

    def test_runaway_generator_capped(self):
        with pytest.raises(ValueError):
            tree_of_generator(lambda w: "ab", max_nodes=100)

    def test_depth_equals_word_length(self):
        t = tree_of_generator(lambda w: "a" if len(w) < 5 else "")
        assert max(len(w) for w in t.nodes) == 5
