"""Subgraph Isomorphism Problem (SIP) — decision search (paper §5.1).

Decide whether a copy of a *pattern* graph appears in a *target* graph:
an injective mapping of pattern vertices to target vertices such that
every pattern edge maps to a target edge (non-induced subgraph
isomorphism, as in [27]).  The *induced* variant — pattern non-edges
must also map to target non-edges — is supported via
``SIPInstance.build(..., induced=True)``; it is the harder matching
discipline needed by the bigraph-matching direction the paper's
conclusion announces.

A search-tree node assigns the first ``d`` pattern vertices (pattern
vertices are statically ordered by non-increasing degree — hardest
first, the fail-first heuristic).  Children map the next pattern vertex
to each compatible target vertex: unused, degree-compatible, and
adjacency-consistent with every assigned pattern neighbour.

Objective is the number of assigned vertices; the Decision search type
with ``target = pattern.n`` terminates on the first full embedding.
The bound function performs a cheap global feasibility check (enough
degree-compatible target vertices must remain) so invalidated subtrees
die early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.apps.graph import Graph
from repro.core.nodegen import IterNodeGenerator, NodeGenerator
from repro.core.params import SkeletonParams
from repro.core.results import SearchResult
from repro.core.searchtypes import Decision
from repro.core.skeletons import make_skeleton
from repro.core.space import SearchSpec
from repro.util.bitset import bit_indices, count_bits

__all__ = ["SIPInstance", "SIPNode", "SIPGen", "sip_spec", "solve_sip", "check_embedding"]


@dataclass(frozen=True)
class SIPInstance:
    """A pattern/target pair with the static pattern vertex order."""

    pattern: Graph
    target: Graph
    order: tuple[int, ...]  # pattern vertices, most-constrained first
    target_by_degree: tuple[int, ...]  # target vertices, high degree first
    degree_rank: tuple[int, ...]  # degree_rank[w] = position in target_by_degree
    min_degree_mask: tuple[int, ...]  # [d] = bitset of targets with degree >= d
    induced: bool = False  # also require non-edges to map to non-edges

    @classmethod
    def build(cls, pattern: Graph, target: Graph, *, induced: bool = False) -> "SIPInstance":
        if pattern.n == 0:
            raise ValueError("pattern must be non-empty")
        order = tuple(
            sorted(range(pattern.n), key=lambda v: (-pattern.degree(v), v))
        )
        target_by_degree = tuple(
            sorted(range(target.n), key=lambda w: (-target.degree(w), w))
        )
        degree_rank = [0] * target.n
        for rank, w in enumerate(target_by_degree):
            degree_rank[w] = rank
        max_pdeg = max(pattern.degree(v) for v in range(pattern.n))
        masks = []
        for d in range(max_pdeg + 1):
            mask = 0
            for w in range(target.n):
                if target.degree(w) >= d:
                    mask |= 1 << w
            masks.append(mask)
        return cls(
            pattern,
            target,
            order,
            target_by_degree,
            tuple(degree_rank),
            tuple(masks),
            induced,
        )

    def pattern_vertex(self, depth: int) -> int:
        """The pattern vertex assigned at tree depth ``depth + 1``."""
        return self.order[depth]


@dataclass(frozen=True, slots=True)
class SIPNode:
    """A partial embedding: assignment[i] maps order[i]; used targets."""

    assignment: tuple[int, ...]
    used: int  # bitset of used target vertices

    @property
    def depth(self) -> int:
        return len(self.assignment)


def _candidates(inst: SIPInstance, node: SIPNode) -> Iterator[SIPNode]:
    if node.depth >= inst.pattern.n:
        return
    p = inst.pattern_vertex(node.depth)
    p_deg = inst.pattern.degree(p)
    # Pattern neighbours of p that are already assigned, with their
    # images, and how many of p's pattern neighbours are still to come.
    # Candidate mask: unused, degree-compatible, adjacent to the image
    # of every assigned pattern-neighbour of p — three bitset ANDs
    # replace the per-candidate edge loops.
    adj = inst.target.adj
    mask = inst.min_degree_mask[p_deg] & ~node.used
    for i in range(node.depth):
        if inst.pattern.has_edge(p, inst.order[i]):
            mask &= adj[node.assignment[i]]
        elif inst.induced:
            # Induced matching: a pattern *non*-edge forbids a target edge.
            mask &= ~adj[node.assignment[i]]
    future_neighbours = sum(
        1
        for i in range(node.depth + 1, inst.pattern.n)
        if inst.pattern.has_edge(p, inst.order[i])
    )
    rank = inst.degree_rank
    for w in sorted(bit_indices(mask), key=rank.__getitem__):
        # Look-ahead (the cheap core of McCreesh-Prosser's filtering):
        # w must keep enough *unused* neighbours to host the images of
        # p's not-yet-assigned pattern neighbours.
        if count_bits(adj[w] & ~node.used) < future_neighbours:
            continue
        yield SIPNode(assignment=node.assignment + (w,), used=node.used | (1 << w))


class SIPGen(NodeGenerator[SIPInstance, SIPNode]):
    """Children = consistent images for the next pattern vertex."""

    __slots__ = ("_inner",)

    def __init__(self, inst: SIPInstance, parent: SIPNode) -> None:
        self._inner = IterNodeGenerator(_candidates(inst, parent))

    def has_next(self) -> bool:
        return self._inner.has_next()

    def next(self) -> SIPNode:
        return self._inner.next()


def _remaining_degree_profiles(inst: SIPInstance) -> tuple[tuple[int, ...], ...]:
    """``profiles[d]`` = degrees of the pattern vertices not yet assigned
    at depth d, sorted descending.  Static per instance, computed once."""
    profiles = []
    for d in range(inst.pattern.n + 1):
        profile = sorted(
            (inst.pattern.degree(inst.order[i]) for i in range(d, inst.pattern.n)),
            reverse=True,
        )
        profiles.append(tuple(profile))
    return tuple(profiles)


def _upper_bound(inst: SIPInstance, node: SIPNode, profiles=None) -> int:
    """Admissible bound on the deepest embedding reachable below ``node``.

    A full embedding needs, for each remaining pattern vertex, an unused
    target vertex of at least its degree.  Compare the sorted remaining
    pattern degrees against the sorted unused target degrees (a Hall-
    style counting check).  If the matching is impossible no complete
    embedding exists below this node, so the subtree can never reach the
    decision target — return the current depth so the Decision search
    type prunes it.

    ``inst.target_by_degree`` is already degree-sorted, so filtering it
    by the used-bitset yields the sorted unused degrees in O(n) without
    a per-node sort.
    """
    remaining = (
        profiles[node.depth]
        if profiles is not None
        else _remaining_degree_profiles(inst)[node.depth]
    )
    if not remaining:
        return node.depth
    used = node.used
    k = 0
    need = len(remaining)
    for w in inst.target_by_degree:
        if used >> w & 1:
            continue
        if inst.target.degree(w) < remaining[k]:
            # Degrees only shrink from here on: the k-th requirement
            # (and the match) is unsatisfiable.
            return node.depth
        k += 1
        if k == need:
            return inst.pattern.n
    return node.depth  # fewer unused targets than remaining pattern vertices


def sip_spec(inst: SIPInstance, *, name: str = "sip") -> SearchSpec:
    """SIP :class:`SearchSpec`; pair with ``Decision(target=pattern.n)``."""
    profiles = _remaining_degree_profiles(inst)
    return SearchSpec(
        name=name,
        space=inst,
        root=SIPNode(assignment=(), used=0),
        generator=SIPGen,
        objective=lambda node: node.depth,
        upper_bound=lambda space, node: _upper_bound(space, node, profiles),
        # Partial embeddings are valid witnesses of their own depth;
        # complete ones must pass the full embedding check.
        witness_check=lambda space, node: (
            check_embedding(space, node) if node.depth == space.pattern.n else True
        ),
    )


def solve_sip(
    pattern: Graph,
    target: Graph,
    *,
    skeleton: str = "sequential",
    params: Optional[SkeletonParams] = None,
    induced: bool = False,
) -> SearchResult:
    """Decide pattern-in-target with any coordination."""
    inst = SIPInstance.build(pattern, target, induced=induced)
    spec = sip_spec(inst, name=f"sip-{pattern.n}in{target.n}")
    return make_skeleton(skeleton, "decision").search(
        spec, params, stype=Decision(target=pattern.n)
    )


def check_embedding(inst: SIPInstance, node: SIPNode) -> bool:
    """Verify a witness: injective and edge-preserving."""
    if node.depth != inst.pattern.n:
        return False
    if count_bits(node.used) != inst.pattern.n:
        return False
    image = {inst.order[i]: node.assignment[i] for i in range(inst.pattern.n)}
    for u, v in inst.pattern.edges():
        if not inst.target.has_edge(image[u], image[v]):
            return False
    if inst.induced:
        for u in range(inst.pattern.n):
            for v in range(u + 1, inst.pattern.n):
                if not inst.pattern.has_edge(u, v) and inst.target.has_edge(
                    image[u], image[v]
                ):
                    return False
    return True
