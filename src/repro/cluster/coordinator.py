"""The cluster coordinator: global task queue, incumbent, termination.

One coordinator owns the authoritative state of a distributed Budget
search:

- the **task table** — every subtree that exists as a unit of work,
  with its lease (which worker, which epoch) and lifecycle
  (queued → leased → done, or cancelled);
- the **outstanding counter** — distributed termination detection: the
  root task starts it at 1, every OFFCUT child increments it, every
  accepted RESULT decrements it; zero means the whole tree has been
  searched (the same invariant the multiprocessing backend keeps in a
  shared integer, here maintained by the single writer that sees every
  message);
- the **incumbent** — best-first merge of every INCUMBENT/RESULT
  arrival; only *strict* improvements are rebroadcast to the other
  workers, so bound traffic is proportional to how often the answer
  actually improves (the real-network realisation of the simulator's
  delayed PGAS broadcast: a worker holding a stale bound prunes less,
  never wrongly, §4.3).

Fault model (see docs/cluster.md for the full argument):

- A worker that disconnects or misses heartbeats is declared dead; its
  leased tasks are re-queued with a **bumped epoch** and re-leased.
  RESULT/OFFCUT frames carrying a stale epoch are dropped, so a worker
  that was merely slow cannot double-count a reassigned task or corrupt
  the outstanding counter.
- Re-running a subtree is idempotent for optimisation and decision
  searches (knowledge is max-merged), so the cluster *degrades* under
  crashes instead of undercounting; node counts may overcount
  re-searched work, and ``metrics.reassigned`` records every re-lease.
- An enumeration task's partial accumulator dies with its worker and
  cannot be reconstructed, so a worker lost mid-enumeration fails the
  job loudly — identical policy to the multiprocessing backend.

The coordinator runs one job at a time (callers serialise; the service
:class:`~repro.cluster.backend.ClusterBackend` holds a lock).  Workers
may join at any time, including mid-job — they are sent the active JOB
and leased tasks immediately, which is also how a restarted worker
resumes contributing.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.cluster import protocol as P
from repro.cluster.faults import CoordinatorFaults
from repro.core.ordered import OrderedLedger, ordered_frontier
from repro.core.results import SearchMetrics, SearchResult
from repro.core.searchtypes import Incumbent
from repro.runtime.processes import make_stype

__all__ = [
    "ClusterError",
    "ClusterJobFailed",
    "ClusterJobTimeout",
    "ClusterJobCancelled",
    "Coordinator",
    "ClusterHandle",
]


class ClusterError(RuntimeError):
    """Base class for cluster runtime failures."""


class ClusterJobFailed(ClusterError):
    """The job cannot complete correctly (e.g. enumeration worker died)."""


class ClusterJobTimeout(ClusterError):
    """The job exceeded its wall-clock timeout and was abandoned."""


class ClusterJobCancelled(ClusterError):
    """The job was cancelled by the submitter."""


QUEUED = "queued"
LEASED = "leased"
DONE = "done"
CANCELLED = "cancelled"


@dataclass
class TaskRecord:
    """One unit of work: a subtree, its lease and its epoch."""

    id: int
    node: Any  # wire-encoded form (stored encoded so re-leases are cheap)
    depth: int
    parent: Optional[int] = None
    epoch: int = 0
    state: str = QUEUED
    worker: Optional[int] = None
    # Ordered jobs only: the discovery-order priority and the pinned
    # starting bound (None = speculative, the worker uses its last-heard
    # finalised-prefix best).
    seq: Optional[int] = None
    bound: Optional[int] = None


@dataclass
class WorkerConn:
    """Coordinator-side record of one connected worker."""

    id: int
    name: str
    writer: Any
    slots: int = 1
    tasks: set = field(default_factory=set)  # leased task ids
    last_seen: float = 0.0
    alive: bool = True
    said_bye: bool = False
    retiring: bool = False  # told to RETIRE: no new leases, drain out
    proto_version: int = P.PROTOCOL_VERSION
    # Stack-stealing mediation state: a STEAL is in flight to this
    # worker (one at a time), / its last STOLEN answer was empty so
    # re-asking is pointless until it reports fresh progress.
    steal_pending: bool = False
    steal_dry: bool = False
    # The negotiated wire codec for frames *to* this worker (inbound
    # decoding auto-detects).  None until the WELCOME has been posted,
    # so the handshake itself always travels as JSON.
    codec: Any = None


class _Job:
    """Coordinator-side state of the active search job."""

    def __init__(self, job_id: int, payload: dict, loop) -> None:
        self.id = job_id
        self.payload = payload
        factory = P.resolve_factory(payload["factory"])
        args = tuple(P.decode_node(payload.get("factory_args") or []))
        self.spec = factory(*args)
        self.stype = make_stype(
            payload["stype_kind"], dict(payload.get("stype_kwargs") or {})
        )
        self.enum = self.stype.kind == "enumeration"
        self.coordination = str(payload.get("coordination") or "budget")
        if self.coordination not in ("budget", "stacksteal", "ordered"):
            raise ValueError(
                f"the cluster runs 'budget', 'stacksteal' or 'ordered' "
                f"jobs, not {self.coordination!r}"
            )
        self.chunked = bool(payload.get("chunked", True))
        self.d_cutoff = int(payload.get("d_cutoff", 2))
        self.knowledge = self.stype.initial_knowledge(self.spec)
        self.best_value: Optional[int] = (
            None if self.enum else self.knowledge.value
        )
        self.metrics = SearchMetrics()
        self.tasks: dict[int, TaskRecord] = {}
        self.queue: deque[int] = deque()
        self.outstanding = 0
        self.contributors: set[int] = set()
        self.goal = False
        self.stale_dropped = 0
        self.state = "running"
        self.started = time.perf_counter()
        self.done: asyncio.Future = loop.create_future()
        self._next_task = 0
        self.ledger: Optional[OrderedLedger] = None
        self.seq_task: dict[int, int] = {}
        if self.coordination == "ordered":
            # Phase 1 runs here, synchronously: the sequential
            # depth-bounded expansion that numbers the frontier.  It is
            # the region above d_cutoff — small by construction — so
            # blocking the loop for it is fine.
            frontier = ordered_frontier(
                self.spec, self.stype, d_cutoff=self.d_cutoff
            )
            self.ledger = OrderedLedger(self.stype, frontier)
            if not self.enum:
                self.best_value = self.ledger.required_bound()
            for t in frontier.tasks:
                rec = TaskRecord(
                    id=self._new_task_id(),
                    node=P.encode_node(t.node),
                    depth=t.depth,
                    seq=t.seq,
                )
                self.tasks[rec.id] = rec
                self.queue.append(rec.id)
                self.seq_task[t.seq] = rec.id
            self.outstanding = self.ledger.task_count
        else:
            root = TaskRecord(
                id=self._new_task_id(),
                node=P.encode_node(self.spec.root),
                depth=0,
            )
            self.tasks[root.id] = root
            self.queue.append(root.id)
            self.outstanding = 1

    def _new_task_id(self) -> int:
        self._next_task += 1
        return self._next_task

    def add_offcuts(self, parent: TaskRecord, depth: int, nodes: list) -> int:
        """Register budget-split subtrees as fresh queued tasks."""
        for node in nodes:
            rec = TaskRecord(
                id=self._new_task_id(), node=node, depth=depth, parent=parent.id
            )
            self.tasks[rec.id] = rec
            self.queue.append(rec.id)
        self.outstanding += len(nodes)
        self.metrics.spawns += len(nodes)
        return len(nodes)

    def job_message(self) -> dict:
        """The JOB frame for a (possibly late-joining) worker."""
        return {
            "type": P.JOB,
            "job": self.id,
            "factory": self.payload["factory"],
            "factory_args": self.payload.get("factory_args") or [],
            "stype_kind": self.payload["stype_kind"],
            "stype_kwargs": dict(self.payload.get("stype_kwargs") or {}),
            "budget": int(self.payload.get("budget", 1000)),
            "share_poll": int(self.payload.get("share_poll", 64)),
            "coordination": self.coordination,
            "chunked": self.chunked,
            "d_cutoff": self.d_cutoff,
            "best": self.best_value,
        }

    def result(self, workers_seen: int) -> SearchResult:
        """Assemble the final :class:`SearchResult` (mirrors the
        multiprocessing backend's construction)."""
        self.metrics.weighted_nodes = self.metrics.nodes
        elapsed = time.perf_counter() - self.started
        workers = max(1, workers_seen)
        if isinstance(self.knowledge, Incumbent):
            return SearchResult(
                kind=self.stype.kind,
                value=self.knowledge.value,
                node=self.knowledge.node,
                found=(self.goal or self.stype.is_goal(self.knowledge))
                if self.stype.kind == "decision"
                else None,
                metrics=self.metrics,
                wall_time=elapsed,
                workers=workers,
            )
        return SearchResult(
            kind=self.stype.kind,
            value=self.knowledge,
            metrics=self.metrics,
            wall_time=elapsed,
            workers=workers,
        )


class Coordinator:
    """Asyncio coordinator server.  See the module docstring.

    Args:
        host/port: listen address (port 0 picks a free port; the bound
            port is in :attr:`port` after :meth:`start`).
        heartbeat_interval: the cadence workers are told to beat at.
        heartbeat_timeout: silence longer than this declares a worker
            dead and re-leases its tasks.
        wire_codec: the body format this coordinator *prefers*
            (``"binary"`` or ``"json"``); each connection settles on it
            via HELLO/WELCOME negotiation, so a JSON-only peer still
            talks to a binary-preferring coordinator.
        faults: optional coordinator-side fault injection (partition
            windows dropping inbound frames from named workers) — see
            :mod:`repro.cluster.faults`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 5.0,
        wire_codec: str = "binary",
        faults: Optional[CoordinatorFaults] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.wire_codec = P.get_codec(wire_codec).name
        self._faults = faults if faults is not None and faults else None
        self.workers: dict[int, WorkerConn] = {}
        # Optional observer of strict incumbent improvements — the
        # gateway's status streams feed off this.  Called on the loop
        # thread with the new objective value; must be fast and must
        # not raise (it is guarded anyway).
        self.on_incumbent: Optional[Callable[[int], None]] = None
        self._next_worker = 0
        self._next_job = 0
        self._job: Optional[_Job] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._watchdog_task: Optional[asyncio.Task] = None
        self._worker_event: Optional[asyncio.Event] = None
        self._loop = None
        self.shutting_down = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listen socket and start the accept loop + watchdog."""
        self._loop = asyncio.get_running_loop()
        self._worker_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._watchdog_task = asyncio.create_task(self._watchdog())

    async def stop(self, *, drain_workers: bool = True) -> None:
        """Stop serving.  With ``drain_workers`` a SHUTDOWN is broadcast
        first so workers finish their current task and exit cleanly."""
        self.shutting_down = True
        if drain_workers:
            for worker in list(self.workers.values()):
                self._post(worker, {"type": P.SHUTDOWN})
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._job is not None:
            self._fail_job(self._job, ClusterJobCancelled("coordinator stopped"))
        for worker in list(self.workers.values()):
            self._drop_worker(worker)

    async def wait_for_workers(self, n: int, timeout: Optional[float] = None) -> None:
        """Block until at least ``n`` workers are connected."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while len(self.workers) < n:
            self._worker_event.clear()
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise ClusterError(
                    f"only {len(self.workers)} of {n} workers joined "
                    f"within {timeout:.1f}s"
                )
            try:
                await asyncio.wait_for(self._worker_event.wait(), remaining)
            except asyncio.TimeoutError:
                continue

    # -- fleet introspection / elastic control ------------------------------

    def load_stats_now(self) -> dict:
        """A point-in-time load snapshot (loop thread only).

        This is the signal feed for :class:`repro.deploy.Adaptive`:
        coordinator backlog (queued offcut subtrees), lease pressure,
        outstanding-task count, and per-worker liveness/lease state —
        everything the scaling policy needs, with no extra bookkeeping
        beyond what the scheduler already maintains.
        """
        now = time.monotonic()
        job = self._job
        active = job is not None and job.state == "running"
        workers = [
            {
                "id": w.id,
                "name": w.name,
                "leased": len(w.tasks),
                "retiring": w.retiring,
                "last_seen_age": max(0.0, now - w.last_seen),
            }
            for w in self.workers.values()
        ]
        return {
            "connected": len(self.workers),
            "retiring": sum(1 for w in self.workers.values() if w.retiring),
            "job_active": active,
            "queued_tasks": len(job.queue) if active else 0,
            "leased_tasks": (
                sum(len(w.tasks) for w in self.workers.values()) if active else 0
            ),
            "outstanding": job.outstanding if active else 0,
            "reassigned": job.metrics.reassigned if active else 0,
            "workers": workers,
        }

    async def load_stats(self) -> dict:
        """Async wrapper over :meth:`load_stats_now` for cross-thread use."""
        return self.load_stats_now()

    def retire_worker_now(self, name: str) -> bool:
        """Begin retiring the named worker (loop thread only).

        Sends RETIRE and stops leasing to it; the worker finishes its
        in-flight task, RELEASEs unstarted leases, says BYE and exits.
        Returns False if no live worker has that name.  Idempotent.
        """
        for worker in self.workers.values():
            if worker.name == name and worker.alive:
                if not worker.retiring:
                    worker.retiring = True
                    self._post(worker, {"type": P.RETIRE})
                return True
        return False

    async def retire_worker(self, name: str) -> bool:
        """Async wrapper over :meth:`retire_worker_now`."""
        return self.retire_worker_now(name)

    # -- job execution ------------------------------------------------------

    async def run_job(
        self, payload: dict, *, timeout: Optional[float] = None
    ) -> SearchResult:
        """Run one search to completion across the connected workers.

        ``payload`` is the wire job definition: ``factory`` (dotted
        path), ``factory_args``, ``stype_kind``, ``stype_kwargs``,
        ``budget``, ``share_poll``.  Raises :class:`ClusterJobFailed`,
        :class:`ClusterJobTimeout` or :class:`ClusterJobCancelled`.
        """
        if self._job is not None:
            raise ClusterError("a cluster job is already running")
        self._next_job += 1
        try:
            job = _Job(self._next_job, payload, asyncio.get_running_loop())
        except (P.ProtocolError, TypeError, ValueError) as exc:
            raise ClusterJobFailed(f"bad job payload: {exc}") from exc
        self._job = job
        msg = job.job_message()
        for worker in list(self.workers.values()):
            # Steal state is per-job; a STOLEN still in flight for the
            # previous job is dropped by the job-id check in _dispatch.
            worker.steal_pending = False
            worker.steal_dry = False
            self._post(worker, msg)
        if job.ledger is not None and job.ledger.finished:
            # Phase 1 already finished the search (empty frontier, or a
            # decision goal during expansion): no tasks to lease.
            self._finish_ordered(job)
        else:
            self._pump()
        try:
            return await asyncio.wait_for(asyncio.shield(job.done), timeout)
        except asyncio.TimeoutError:
            self._fail_job(job, ClusterJobTimeout(
                f"cluster job exceeded {timeout:.3f}s"
            ))
            raise job.done.exception() from None

    def cancel_active_job(self, reason: str = "cancelled") -> bool:
        """Cancel the running job (thread-unsafe; see ClusterHandle)."""
        job = self._job
        if job is None or job.state != "running":
            return False
        self._fail_job(job, ClusterJobCancelled(reason))
        return True

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            import socket as _socket

            sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
        worker: Optional[WorkerConn] = None
        try:
            hello = await self._read_frame(reader)
            if (
                hello is None
                or hello.get("type") != P.HELLO
                or hello.get("version") not in P.SUPPORTED_VERSIONS
            ):
                writer.write(P.frame_bytes({
                    "type": P.ERROR,
                    "reason": "expected HELLO with a supported protocol version",
                }))
                return
            version = int(hello["version"])
            # A v1 peer offers no codecs field and cannot decode binary
            # bodies; negotiation for it degenerates to JSON.
            codec_name = (
                P.negotiate(hello.get("codecs"), self.wire_codec)
                if version >= 2
                else "json"
            )
            self._next_worker += 1
            worker = WorkerConn(
                id=self._next_worker,
                name=str(hello.get("name") or f"worker-{self._next_worker}"),
                writer=writer,
                slots=max(1, int(hello.get("slots", 1))),
                last_seen=time.monotonic(),
                proto_version=version,
            )
            self.workers[worker.id] = worker
            self._post(worker, {
                "type": P.WELCOME,
                "worker": worker.id,
                "heartbeat": self.heartbeat_interval,
                "codec": codec_name,
            })
            # Everything after the WELCOME speaks the negotiated codec.
            worker.codec = P.get_codec(codec_name)
            if self.shutting_down:
                self._post(worker, {"type": P.SHUTDOWN})
            elif self._job is not None and self._job.state == "running":
                self._post(worker, self._job.job_message())
            self._worker_event.set()
            self._pump()
            while worker.alive:
                msg = await self._read_frame(reader)
                if msg is None:
                    break
                # Fault injection: a partitioned worker's frames vanish
                # before they can refresh liveness, so the watchdog
                # re-leases exactly as it would for a severed link.
                if self._faults is not None and self._faults.drop_inbound(
                    worker.name, msg["type"]
                ):
                    continue
                worker.last_seen = time.monotonic()
                if msg["type"] == P.BYE:
                    worker.said_bye = True
                    break
                self._dispatch(worker, msg)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        except P.ProtocolError:
            if worker is not None:
                self._post(worker, {
                    "type": P.ERROR, "reason": "protocol violation",
                })
        finally:
            if worker is not None:
                self._drop_worker(worker)
            try:
                writer.close()
            except Exception:
                pass

    @staticmethod
    async def _read_frame(reader) -> Optional[dict]:
        try:
            header = await reader.readexactly(4)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF on a frame boundary
            raise ConnectionError("connection closed mid-frame") from None
        length = int.from_bytes(header, "big")
        if length > P.MAX_FRAME:
            raise P.ProtocolError(f"peer announced a {length}-byte frame")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ConnectionError("connection closed mid-frame") from None
        return P.decode_body(body)

    def _post(self, worker: WorkerConn, msg: dict) -> None:
        """Queue one frame to a worker (single-writer event loop, so a
        plain buffered write is race-free; errors mark the worker dead
        and the heartbeat watchdog finishes the cleanup)."""
        if not worker.alive:
            return
        try:
            worker.writer.write(P.frame_bytes(msg, worker.codec))
        except Exception:
            self._drop_worker(worker)

    # -- message dispatch ---------------------------------------------------

    def _dispatch(self, worker: WorkerConn, msg: dict) -> None:
        mtype = msg["type"]
        if mtype == P.HEARTBEAT:
            return  # last_seen already refreshed
        job = self._job
        if job is None or job.state != "running" or msg.get("job") != job.id:
            return  # stale traffic for a finished job: drop silently
        if mtype == P.INCUMBENT:
            self._on_incumbent(worker, job, msg)
        elif mtype == P.OFFCUT:
            self._on_offcut(worker, job, msg)
        elif mtype == P.STOLEN:
            self._on_stolen(worker, job, msg)
        elif mtype == P.RESULT:
            self._on_result(worker, job, msg)
        elif mtype == P.RELEASE:
            self._on_release(worker, job, msg)

    def _valid_lease(self, worker: WorkerConn, job: _Job, msg: dict):
        """The task record iff this frame matches a live lease held by
        its sender at the current epoch; None drops the frame."""
        rec = job.tasks.get(msg.get("task"))
        if (
            rec is None
            or rec.state != LEASED
            or rec.worker != worker.id
            or rec.epoch != msg.get("epoch")
        ):
            job.stale_dropped += 1
            return None
        return rec

    def _on_incumbent(self, worker: WorkerConn, job: _Job, msg: dict) -> None:
        if job.enum or job.ledger is not None:
            # Ordered workers never publish mid-task (fixed-bound tasks
            # are pure); the only incumbent authority is the ledger.
            return
        value = msg.get("value")
        if not isinstance(value, int):
            return
        node = P.decode_node(msg.get("node"))
        if node is not None:
            merged = job.stype.combine(job.knowledge, Incumbent(value, node))
            if merged is not job.knowledge:
                job.knowledge = merged
        if value > job.best_value:
            # Strict improvement: remember and rebroadcast to everyone
            # else.  Non-improvements (ties, stale publishes) stop here.
            job.best_value = value
            job.metrics.broadcasts += 1
            out = {"type": P.INCUMBENT, "job": job.id, "value": value}
            for other in list(self.workers.values()):
                if other.id != worker.id:
                    self._post(other, out)
            if self.on_incumbent is not None:
                try:
                    self.on_incumbent(value)
                except Exception:
                    pass
        if job.stype.is_goal(job.knowledge):
            # Goal reached — but complete on the RESULT frame, not here.
            # The publishing worker broke out of its search loop on this
            # same improvement and is guaranteed to follow with a RESULT
            # (goal=True) carrying its node counts; completing on the
            # INCUMBENT would race ahead of it and report a search that
            # visited zero nodes.  If the worker dies in between, its
            # lease is re-run and the goal is rediscovered.
            job.goal = True

    def _on_offcut(self, worker: WorkerConn, job: _Job, msg: dict) -> None:
        rec = self._valid_lease(worker, job, msg)
        if rec is None:
            return
        nodes = msg.get("nodes") or []
        depth = int(msg.get("depth", rec.depth + 1))
        if nodes:
            job.add_offcuts(rec, depth, nodes)
            self._pump()

    def _on_stolen(self, worker: WorkerConn, job: _Job, msg: dict) -> None:
        """A steal answer: offcut subtrees carved from the victim's live
        stack, or an empty list meaning it had nothing to give."""
        worker.steal_pending = False
        nodes = msg.get("nodes") or []
        if not nodes:
            # Don't re-ask until the victim reports fresh progress (the
            # flag clears on its next RESULT); retry other victims now.
            worker.steal_dry = True
            self._pump()
            return
        rec = self._valid_lease(worker, job, msg)
        if rec is None:
            return
        depth = int(msg.get("depth", rec.depth + 1))
        job.add_offcuts(rec, depth, nodes)
        job.metrics.steals += len(nodes)
        self._pump()

    def _on_result(self, worker: WorkerConn, job: _Job, msg: dict) -> None:
        rec = self._valid_lease(worker, job, msg)
        if rec is None:
            return
        # Fresh progress: empty-handed steal verdicts are stale now, and
        # any STEAL this worker left unanswered died with the task.
        worker.steal_pending = False
        for other in self.workers.values():
            other.steal_dry = False
        if job.ledger is not None:
            self._on_result_ordered(worker, job, rec, msg)
            return
        rec.state = DONE
        rec.worker = None
        worker.tasks.discard(rec.id)
        job.contributors.add(worker.id)
        m = job.metrics
        m.nodes += int(msg.get("nodes", 0))
        m.prunes += int(msg.get("prunes", 0))
        m.backtracks += int(msg.get("backtracks", 0))
        m.max_depth = max(m.max_depth, int(msg.get("max_depth", 0)))
        if job.enum:
            job.knowledge = job.stype.combine(job.knowledge, msg.get("knowledge"))
        else:
            value = msg.get("value")
            node = P.decode_node(msg.get("node"))
            if node is not None and isinstance(value, int):
                job.knowledge = job.stype.combine(
                    job.knowledge, Incumbent(value, node)
                )
                if value > job.best_value:
                    job.best_value = value
        job.outstanding -= 1
        if msg.get("goal") or (
            not job.enum and job.stype.is_goal(job.knowledge)
        ):
            job.goal = True
            self._complete_job(job)
            return
        if job.outstanding == 0:
            # Distributed termination: every task ever created has been
            # accepted exactly once (epochs make reassignment idempotent
            # for this counter), so the whole tree is searched.
            self._complete_job(job)
            return
        self._pump()

    def _on_result_ordered(
        self, worker: WorkerConn, job: _Job, rec: TaskRecord, msg: dict
    ) -> None:
        """Feed one arrived ordered result to the ledger and act on its
        verdict: finalise the ready prefix, re-lease any run the ledger
        rejected for a bound mismatch (epoch bumped, bound pinned,
        front of the queue), and broadcast the new finalised-prefix
        best."""
        ledger = job.ledger
        rec.state = DONE
        rec.worker = None
        worker.tasks.discard(rec.id)
        job.contributors.add(worker.id)
        payload: dict = {
            "nodes": int(msg.get("nodes", 0)),
            "prunes": int(msg.get("prunes", 0)),
            "backtracks": int(msg.get("backtracks", 0)),
            "max_depth": int(msg.get("max_depth", 0)),
            "goal": bool(msg.get("goal")),
        }
        if job.enum:
            payload["knowledge"] = msg.get("knowledge")
        else:
            payload["bound"] = msg.get("bound")
            payload["value"] = msg.get("value")
            payload["node"] = P.decode_node(msg.get("node"))
        ledger.record(rec.seq, payload)
        for rerun_seq, rerun_bound in ledger.advance():
            rrec = job.tasks[job.seq_task[rerun_seq]]
            # Bump before re-queueing, exactly like a crash re-lease:
            # the rejected run's lease is dead.
            rrec.epoch += 1
            rrec.state = QUEUED
            rrec.worker = None
            rrec.bound = rerun_bound
            job.queue.appendleft(rrec.id)
        job.outstanding = ledger.task_count - ledger.next_seq
        if not job.enum:
            new_best = ledger.required_bound()
            if new_best is not None and (
                job.best_value is None or new_best > job.best_value
            ):
                # The broadcast value is the *finalised-prefix* best —
                # monotone and deterministic — not the raw arrival best.
                job.best_value = new_best
                job.metrics.broadcasts += 1
                out = {"type": P.INCUMBENT, "job": job.id, "value": new_best}
                for other in list(self.workers.values()):
                    self._post(other, out)
                if self.on_incumbent is not None:
                    try:
                        self.on_incumbent(new_best)
                    except Exception:
                        pass
        if ledger.finished:
            self._finish_ordered(job)
            return
        self._pump()

    def _finish_ordered(self, job: _Job) -> None:
        """Copy the ledger's authoritative state into the job and
        complete it (the ledger owns knowledge and every deterministic
        counter; the job contributes only transport-level bookkeeping)."""
        ledger = job.ledger
        ledger.metrics.reassigned += job.metrics.reassigned
        ledger.metrics.broadcasts = job.metrics.broadcasts
        ledger.metrics.steals = job.metrics.steals
        job.metrics = ledger.metrics
        job.knowledge = ledger.knowledge
        job.goal = ledger.goal
        job.outstanding = 0
        self._complete_job(job)

    def _on_release(self, worker: WorkerConn, job: _Job, msg: dict) -> None:
        """Retire handback: re-queue each returned lease under a bumped
        epoch (the cooperative twin of the crash re-lease path — same
        accounting, but no partial state ever existed)."""
        released = 0
        for pair in msg.get("tasks") or []:
            try:
                task_id, epoch = int(pair[0]), int(pair[1])
            except (TypeError, ValueError, IndexError):
                continue
            rec = job.tasks.get(task_id)
            if (
                rec is None
                or rec.state != LEASED
                or rec.worker != worker.id
                or rec.epoch != epoch
            ):
                job.stale_dropped += 1
                continue
            worker.tasks.discard(rec.id)
            # Bump before re-queueing: anything else the retiring worker
            # still says about this task is stale by construction.
            rec.epoch += 1
            rec.state = QUEUED
            rec.worker = None
            job.queue.appendleft(rec.id)
            job.metrics.reassigned += 1
            released += 1
        if released:
            self._pump()

    # -- scheduling / fault handling ----------------------------------------

    def _pump(self) -> None:
        """Lease queued tasks to free slots, round-robin, batched.

        Each pass grants at most one lease per worker with a free slot;
        passes repeat until the queue drains or every slot is full.
        Round-robin (not filling one worker greedily) is what spreads
        the first few offcuts across the fleet — with prefetch slots a
        greedy fill would let one worker hoard the whole frontier and
        serialise the search.  All of a worker's grants then go out in
        ONE batched TASK frame (``leases: [[id, epoch, node, depth],
        ...]``); a v1 peer instead gets the single-lease frames it
        expects, one per grant.
        """
        job = self._job
        if job is None or job.state != "running":
            return
        # Only v3 peers understand coordination-aware jobs (bound
        # leases, STEAL); a down-level worker leased ordered work would
        # run it with the budget loop and corrupt determinism.
        min_version = 3 if job.coordination != "budget" else 1
        eligible = [
            w for w in self.workers.values()
            if w.alive and not w.retiring and w.proto_version >= min_version
        ]
        batches: dict[int, list[TaskRecord]] = {}
        granted = True
        while granted and job.queue:
            granted = False
            for worker in eligible:
                if not worker.alive or len(worker.tasks) >= worker.slots:
                    continue
                rec = None
                while job.queue:
                    cand = job.tasks[job.queue.popleft()]
                    if cand.state == QUEUED:
                        rec = cand
                        break
                if rec is None:
                    break  # queue drained (stale entries popped away)
                rec.state = LEASED
                rec.worker = worker.id
                worker.tasks.add(rec.id)
                batches.setdefault(worker.id, []).append(rec)
                granted = True
        for worker in eligible:
            leases = batches.get(worker.id)
            if not leases or not worker.alive:
                continue
            if worker.proto_version >= 2:
                self._post(worker, {
                    "type": P.TASK,
                    "job": job.id,
                    # Ordered leases carry a 5th element: the pinned
                    # starting bound (None = speculative).
                    "leases": [
                        [r.id, r.epoch, r.node, r.depth, r.bound]
                        for r in leases
                    ] if job.ledger is not None else [
                        [r.id, r.epoch, r.node, r.depth] for r in leases
                    ],
                })
            else:
                for r in leases:
                    self._post(worker, {
                        "type": P.TASK,
                        "job": job.id,
                        "task": r.id,
                        "epoch": r.epoch,
                        "node": r.node,
                        "depth": r.depth,
                        "bound": r.bound,
                    })
        if job.coordination == "stacksteal" and not job.queue:
            self._mediate_steals(job, eligible)

    def _mediate_steals(self, job: _Job, eligible: list) -> None:
        """Ask busy workers to split their live stacks for idle ones.

        One STEAL per idle worker per pass, aimed at the most-loaded
        victims; a victim with a STEAL already in flight, or whose last
        answer was empty (``steal_dry``), is skipped until it reports
        progress.  Only v3 peers can be victims — older ones would drop
        the frame on the floor and the pending flag would stick.
        """
        idle = sum(1 for w in eligible if not w.tasks)
        if not idle:
            return
        victims = [
            w for w in self.workers.values()
            if w.alive and not w.retiring and w.proto_version >= 3
            and w.tasks and not w.steal_pending and not w.steal_dry
        ]
        victims.sort(key=lambda w: len(w.tasks), reverse=True)
        for victim in victims[:idle]:
            victim.steal_pending = True
            self._post(victim, {"type": P.STEAL, "job": job.id})

    def _drop_worker(self, worker: WorkerConn) -> None:
        """Remove a worker; re-lease its tasks (or fail an enumeration
        job, whose partial accumulator died with the worker)."""
        if not worker.alive:
            return
        worker.alive = False
        self.workers.pop(worker.id, None)
        try:
            worker.writer.close()
        except Exception:
            pass
        job = self._job
        leased = [t for t in worker.tasks]
        worker.tasks.clear()
        if job is None or job.state != "running" or not leased:
            return
        if worker.said_bye:
            # An orderly BYE never abandons leases (drain completes
            # tasks first); if one slips through treat it as a crash.
            pass
        if job.enum and job.ledger is None:
            # Ordered enumeration is exempt: its tasks are pure
            # functions of (root, bound) with no shared accumulator, so
            # a crashed lease is simply re-run — bit-identical.
            self._fail_job(job, ClusterJobFailed(
                f"worker {worker.name!r} was lost holding "
                f"{len(leased)} enumeration task(s); a partial "
                "accumulator cannot be reconstructed, so completing "
                "would silently miscount"
            ))
            return
        for tid in leased:
            rec = job.tasks.get(tid)
            if rec is None or rec.state != LEASED:
                continue
            # Bump the epoch *before* re-queueing: anything the dead (or
            # merely slow) worker still says about this task is stale.
            rec.epoch += 1
            rec.state = QUEUED
            rec.worker = None
            job.queue.appendleft(rec.id)
            job.metrics.reassigned += 1
        self._pump()

    async def _watchdog(self) -> None:
        """Declare workers dead after ``heartbeat_timeout`` of silence."""
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            now = time.monotonic()
            for worker in list(self.workers.values()):
                if now - worker.last_seen > self.heartbeat_timeout:
                    self._drop_worker(worker)

    # -- completion ---------------------------------------------------------

    def _complete_job(self, job: _Job) -> None:
        if job.state != "running":
            return
        job.state = "finished"
        result = job.result(len(job.contributors))
        if not job.done.done():
            job.done.set_result(result)
        self._end_job(job)

    def _fail_job(self, job: _Job, exc: ClusterError) -> None:
        if job.state != "running":
            return
        job.state = "failed"
        if not job.done.done():
            job.done.set_exception(exc)
        self._end_job(job)

    def _end_job(self, job: _Job) -> None:
        msg = {"type": P.JOB_DONE, "job": job.id}
        for worker in list(self.workers.values()):
            worker.tasks.clear()
            self._post(worker, msg)
        if self._job is job:
            self._job = None


class ClusterHandle:
    """A coordinator running on a dedicated thread, for sync callers.

    The CLI, the service backend, tests and benchmarks all live in
    synchronous code; this wrapper owns the event loop thread and
    exposes the coordinator's operations as blocking calls.  All
    coordinator state is touched only on the loop thread, so the sync
    facade needs no locks of its own.
    """

    def __init__(self, **coordinator_kwargs: Any) -> None:
        self._kwargs = coordinator_kwargs
        self.coordinator: Optional[Coordinator] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Start the loop thread and the coordinator; returns (host, port)."""
        if self._thread is not None:
            raise RuntimeError("handle already started")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(self._loop)
            started.set()
            self._loop.run_forever()
            # Drain cancelled tasks so the loop closes without warnings.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

        self._thread = threading.Thread(target=_run, name="cluster-coordinator")
        self._thread.daemon = True
        self._thread.start()
        started.wait()
        self.coordinator = Coordinator(**self._kwargs)
        self._call(self.coordinator.start(), timeout=10.0)
        return self.coordinator.host, self.coordinator.port

    def shutdown(self, *, drain_workers: bool = True, timeout: float = 10.0) -> None:
        """Stop the coordinator (optionally draining workers) and the
        loop thread.  Idempotent."""
        if self._loop is None:
            return
        if self.coordinator is not None:
            try:
                self._call(
                    self.coordinator.stop(drain_workers=drain_workers),
                    timeout=timeout,
                )
            except Exception:
                pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._loop = None
        self._thread = None

    # -- operations ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self.coordinator.host, self.coordinator.port

    def n_workers(self) -> int:
        """How many workers are currently connected."""
        return len(self.coordinator.workers)

    def wait_for_workers(self, n: int, timeout: Optional[float] = None) -> None:
        """Block until ``n`` workers are connected.

        On timeout raises a :class:`ClusterError` naming how many
        workers actually connected versus how many were required —
        never a bare TimeoutError, whichever layer timed out (the
        coordinator-side deadline or this facade's own call guard).
        """
        try:
            self._call(
                self.coordinator.wait_for_workers(n, timeout),
                timeout=None if timeout is None else timeout + 1.0,
            )
        except (concurrent.futures.TimeoutError, asyncio.TimeoutError):
            raise ClusterError(
                f"only {self.n_workers()} of {n} required workers "
                f"connected within {timeout:.1f}s"
            ) from None

    def load_stats(self) -> dict:
        """Thread-safe point-in-time load snapshot (see
        :meth:`Coordinator.load_stats_now`)."""
        return self._call(self.coordinator.load_stats(), timeout=10.0)

    def retire_worker(self, name: str) -> bool:
        """Thread-safe retire request for the named worker."""
        return self._call(self.coordinator.retire_worker(name), timeout=10.0)

    def run_job(
        self, payload: dict, *, timeout: Optional[float] = None
    ) -> SearchResult:
        """Run one job to completion (blocking)."""
        return self.run_job_future(payload, timeout=timeout).result()

    def run_job_future(self, payload: dict, *, timeout: Optional[float] = None):
        """Submit a job; returns a ``concurrent.futures.Future``."""
        return asyncio.run_coroutine_threadsafe(
            self.coordinator.run_job(payload, timeout=timeout), self._loop
        )

    def cancel_job(self, reason: str = "cancelled") -> None:
        """Cancel the active job (thread-safe)."""
        self._loop.call_soon_threadsafe(
            self.coordinator.cancel_active_job, reason
        )

    def _call(self, coro, *, timeout: Optional[float]):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)
