"""End-to-end cluster tests: real sockets, real worker processes.

The acceptance bar for the distributed runtime is bit-identical results
against :func:`sequential_search` where the maths demands it:

- enumeration counts every node exactly once, whatever the work split,
  so both the value *and* the node count must match;
- a *refuted* decision search prunes on ``bound < target or bound <=
  incumbent`` with the incumbent pinned below target, so its explored
  set is incumbent-independent: node counts must match exactly too;
- optimisation node counts legitimately vary with incumbent timing
  (search-order anomalies), so only the optimum and a valid witness are
  required.
"""

import threading
import time

import pytest

from repro.cluster.coordinator import ClusterHandle
from repro.cluster.local import cluster_budget_search, job_payload
from repro.cluster.worker import ClusterWorker, _worker_process_main
from repro.core.params import SkeletonParams
from repro.core.results import validate_result
from repro.core.searchtypes import make_search_type
from repro.core.sequential import sequential_search
from repro.instances.library import library_spec_factory, spec_for


def _stype_for(instance):
    spec, tname, kwargs = spec_for(instance)
    return spec, make_search_type(tname, **kwargs)


class TestMatchesSequential:
    def test_enumeration_bit_identical(self):
        spec, stype = _stype_for("uts-geo-med")
        res = cluster_budget_search(
            library_spec_factory, ("uts-geo-med",), stype,
            n_workers=2, budget=500, share_poll=32, timeout=60,
        )
        seq = sequential_search(spec, stype)
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes
        assert res.workers == 2
        assert res.metrics.spawns > 0  # real offcut traffic happened

    def test_refuted_decision_bit_identical(self):
        spec, stype = _stype_for("kclique-fig4")  # k=14 does not exist
        res = cluster_budget_search(
            library_spec_factory, ("kclique-fig4",), stype,
            n_workers=2, budget=300, share_poll=32, timeout=120,
        )
        seq = sequential_search(spec, stype)
        assert res.found is False
        assert seq.found is False
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes

    def test_optimisation_value_and_witness(self):
        spec, stype = _stype_for("brock90-1")
        res = cluster_budget_search(
            library_spec_factory, ("brock90-1",), stype,
            n_workers=2, budget=500, share_poll=32, timeout=60,
        )
        seq = sequential_search(spec, stype)
        assert res.value == seq.value
        assert validate_result(spec, res)

    def test_single_worker(self):
        spec, stype = _stype_for("uts-geo-med")
        res = cluster_budget_search(
            library_spec_factory, ("uts-geo-med",), stype,
            n_workers=1, budget=500, timeout=60,
        )
        seq = sequential_search(spec, stype)
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes
        assert res.workers == 1


class TestSkeletonRoute:
    def test_backend_cluster_param(self):
        from repro.core.skeletons import make_skeleton

        spec, stype = _stype_for("brock90-1")
        skel = make_skeleton("budget", "optimisation")
        res = skel.search(
            spec,
            SkeletonParams(backend="cluster", cluster_workers=2, budget=500),
            stype=stype,
            spec_factory=library_spec_factory,
            factory_args=("brock90-1",),
        )
        assert res.value == sequential_search(spec, stype).value

    def test_backend_cluster_requires_factory(self):
        from repro.core.skeletons import make_skeleton

        spec, stype = _stype_for("brock90-1")
        skel = make_skeleton("budget", "optimisation")
        with pytest.raises(ValueError, match="spec_factory"):
            skel.search(
                spec,
                SkeletonParams(backend="cluster"),
                stype=stype,
            )

    def test_non_budget_coordination_rejected(self):
        from repro.cluster.local import run_with_cluster

        spec, stype = _stype_for("brock90-1")
        with pytest.raises(ValueError, match="budget"):
            run_with_cluster(
                "depthbounded", library_spec_factory, ("brock90-1",),
                stype, SkeletonParams(backend="cluster"),
            )


class TestFaultTolerance:
    def test_worker_killed_mid_search_result_still_exact(self):
        # SIGKILL one of two workers mid-refutation: the heartbeat
        # watchdog must re-lease its tasks and the final answer must
        # still match sequential exactly (partial work is never
        # reported, so even the node count stays exact).
        from multiprocessing import Process

        from repro.runtime.processes import graceful_stop

        spec, stype = _stype_for("kclique-fig4")
        payload = job_payload(
            library_spec_factory, ("kclique-fig4",), stype,
            budget=300, share_poll=32,
        )
        handle = ClusterHandle(heartbeat_interval=0.2, heartbeat_timeout=1.0)
        host, port = handle.start()
        procs = [
            Process(
                target=_worker_process_main,
                args=(host, port, f"w{i}", 10.0),
                daemon=True,
            )
            for i in range(2)
        ]
        try:
            for p in procs:
                p.start()
            handle.wait_for_workers(2, timeout=15)
            fut = handle.run_job_future(payload, timeout=90)
            time.sleep(0.5)  # let the search spread over both workers
            procs[0].kill()  # SIGKILL: no BYE, no drain, no flush
            res = fut.result(timeout=120)
        finally:
            handle.shutdown(drain_workers=True)
            for p in procs:
                graceful_stop(p, grace=1.0)
        seq = sequential_search(spec, stype)
        assert res.found is False
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes
        assert res.metrics.reassigned > 0  # the failure was survived, visibly


class TestWorkerLifecycle:
    def test_reconnect_with_backoff_then_drain(self):
        # Start the worker before any coordinator exists: it must retry
        # with backoff, join once the coordinator appears, do real work,
        # and exit cleanly when drained.
        import socket as _socket

        probe = _socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        worker = ClusterWorker(
            "127.0.0.1", port, name="early-bird", give_up_after=30.0
        )
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        time.sleep(0.4)  # several refused connects happen here

        handle = ClusterHandle(host="127.0.0.1", port=port)
        handle.start()
        try:
            handle.wait_for_workers(1, timeout=10)
            spec, stype = _stype_for("uts-geo-med")
            payload = job_payload(
                library_spec_factory, ("uts-geo-med",), stype, budget=500
            )
            res = handle.run_job(payload, timeout=60)
            assert res.value == sequential_search(spec, stype).value
        finally:
            handle.shutdown(drain_workers=True)
        thread.join(timeout=10)
        assert not thread.is_alive()  # SHUTDOWN drained the worker out
        assert worker.tasks_run > 0

    def test_stop_event_aborts_promptly(self):
        stop = threading.Event()
        stop.set()
        worker = ClusterWorker("127.0.0.1", 1, stop_event=stop)
        worker.run()  # must return immediately despite the dead address


class TestServiceBackend:
    def test_scheduler_runs_jobs_on_cluster(self):
        from repro.cluster.backend import ClusterBackend
        from repro.service import JobSpec, JobState, Scheduler

        backend = ClusterBackend(local_workers=2)
        try:
            sched = Scheduler(backend=backend, n_workers=1)
            ok = sched.submit(JobSpec(
                app="maxclique", instance="brock90-1",
                skeleton="budget", params={"budget": 500},
            ))
            bad = sched.submit(JobSpec(
                app="maxclique", instance="brock90-2",
                skeleton="depthbounded",  # cluster runs budget only
            ))
            sched.run_until_idle()
        finally:
            backend.close()
        assert ok.state is JobState.DONE
        assert ok.result.value == 14
        assert ok.result.workers == 2
        assert bad.state is JobState.FAILED
        assert "budget" in bad.error
