"""Dynamic lock-order tracing: unit graph tests, Condition interop and
the scheduler x EventBroker x ShardRouter acyclicity regression."""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis.lockorder import (
    LockOrderCycleError,
    LockOrderGraph,
    installed,
    traced,
)
from repro.core.results import SearchResult


class TestGraph:
    def test_acyclic_graph_passes(self):
        graph = LockOrderGraph()
        graph.record("a.py:1", "b.py:2")
        graph.record("b.py:2", "c.py:3")
        assert graph.find_cycle() is None
        graph.assert_acyclic()

    def test_two_lock_cycle_detected(self):
        graph = LockOrderGraph()
        graph.record("a.py:1", "b.py:2")
        graph.record("b.py:2", "a.py:1")
        cycle = graph.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a.py:1", "b.py:2"}
        with pytest.raises(LockOrderCycleError, match="latent deadlock"):
            graph.assert_acyclic()

    def test_three_lock_cycle_detected(self):
        graph = LockOrderGraph()
        graph.record("a", "b")
        graph.record("b", "c")
        graph.record("c", "a")
        graph.record("a", "d")  # a side branch must not mask the cycle
        assert graph.find_cycle() is not None

    def test_self_edges_ignored(self):
        graph = LockOrderGraph()
        graph.record("a", "a")  # re-entrant RLock acquisition
        assert graph.find_cycle() is None


class TestTracedLocks:
    def test_install_scoped_and_restored(self):
        # Robust under an outer REPRO_LOCK_TRACE session tracer: the
        # scope must restore whatever state preceded it.
        before_installed = installed()
        before_factory = threading.Lock
        with traced():
            assert installed()
        assert installed() == before_installed
        assert threading.Lock is before_factory

    def test_consistent_order_stays_acyclic(self):
        with traced() as graph:
            a = threading.Lock()
            b = threading.Lock()

            def use():
                for _ in range(3):
                    with a:
                        with b:
                            pass

            threads = [threading.Thread(target=use) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            use()
            assert graph.find_cycle() is None

    def test_opposite_orders_form_a_cycle(self):
        with traced() as graph:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
            cycle = graph.find_cycle()
            assert cycle is not None
            with pytest.raises(LockOrderCycleError):
                graph.assert_acyclic()

    def test_acquisition_counter(self):
        with traced() as graph:
            lock = threading.Lock()
            before = graph.acquisitions("test_lockorder")
            for _ in range(5):
                with lock:
                    pass
            assert graph.acquisitions("test_lockorder") == before + 5

    def test_rlock_reentry_is_not_a_cycle(self):
        with traced() as graph:
            lock = threading.RLock()
            with lock:
                with lock:
                    pass
            assert graph.find_cycle() is None


class TestConditionInterop:
    def test_condition_over_traced_lock(self):
        with traced() as graph:
            lock = threading.Lock()
            cond = threading.Condition(lock)
            ready = []

            def waiter():
                with cond:
                    while not ready:
                        cond.wait(timeout=5.0)

            t = threading.Thread(target=waiter)
            t.start()
            time.sleep(0.05)
            with cond:
                ready.append(True)
                cond.notify_all()
            t.join(timeout=5.0)
            assert not t.is_alive()
            assert graph.find_cycle() is None

    def test_condition_over_traced_rlock(self):
        # The scheduler's exact shape: Condition sharing an RLock.
        with traced() as graph:
            lock = threading.RLock()
            cond = threading.Condition(lock)
            with lock:  # outer hold: wait() must fully release and restore
                with cond:
                    cond.wait(timeout=0.01)
            assert graph.find_cycle() is None


# -- end-to-end over the real service stack ------------------------------


class InstantBackend:
    """Deterministic zero-latency backend for the e2e trace."""

    def execute(self, job, *, deadline=None, cancel=None):
        return SearchResult(kind="optimisation", value=42, node=("w",))


def _wait_terminal(job, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not job.terminal:
        assert time.monotonic() < deadline, f"{job.id} stuck in {job.state}"
        time.sleep(0.005)


class TestServiceAcyclicity:
    """Satellite regression: the full scheduler x EventBroker x
    ShardRouter stack never takes its locks in conflicting orders."""

    def test_shard_router_e2e_lock_order_is_acyclic(self):
        from repro.gateway import EventBroker, ShardRouter
        from repro.service.jobs import JobSpec

        with traced() as graph:
            broker = EventBroker()
            router = ShardRouter(
                2,
                backend_factory=lambda i: InstantBackend(),
                pool=2,
                broker=broker,
            )
            router.start()
            try:
                jobs = []
                for instance in ("brock90-1", "brock90-2", "sanr90-1"):
                    _, job = router.submit(
                        JobSpec(app="maxclique", instance=instance)
                    )
                    jobs.append(job)
                for job in jobs:
                    _wait_terminal(job)
                # Cross-component probes: broker history under its lock,
                # scheduler job tables under theirs, metric snapshots.
                for job in jobs:
                    assert broker.history(job.id)
                    router.job(job.id)
                for shard in router.shards:
                    shard.snapshot()
                    shard.scheduler.jobs()
            finally:
                router.close()
            graph.assert_acyclic()
            assert graph.acquisitions("service/scheduler.py") > 0
            assert graph.acquisitions("gateway/events.py") > 0

    def test_scheduler_job_lookups_take_the_lock(self):
        """Regression for the unlocked Scheduler.job()/jobs() reads:
        both must acquire the scheduler lock (gateway threads iterate
        the job table while workers mutate it)."""
        from repro.gateway import ShardRouter
        from repro.service.jobs import JobSpec

        with traced() as graph:
            router = ShardRouter(
                1, backend_factory=lambda i: InstantBackend(), pool=1
            )
            router.start()
            try:
                _, job = router.submit(
                    JobSpec(app="maxclique", instance="brock90-1")
                )
                _wait_terminal(job)
                scheduler = router.shards[0].scheduler
                before = graph.acquisitions("service/scheduler.py")
                scheduler.jobs()
                scheduler.job(job.id)
                scheduler.jobs()
                after = graph.acquisitions("service/scheduler.py")
            finally:
                router.close()
            assert after >= before + 3
