"""Real multi-core execution with worker processes.

Where :mod:`repro.runtime.threads` is GIL-bound, this backend achieves
*actual* CPython parallel speedup: Depth-Bounded tasks are distributed
over ``multiprocessing`` workers, each searching its subtree in its own
interpreter.

Because ``SearchSpec`` objects contain closures (not picklable), the
backend takes a *spec factory* — a top-level callable plus picklable
arguments — and rebuilds the spec once per worker process.  Incumbent
knowledge is shared through a lock-protected shared integer holding the
best objective value: workers seed their pruning from it before each
task and publish improvements after, the multi-process analogue of the
simulator's delayed bound broadcast (stale reads only cost pruning,
§4.3).

Limitations, stated plainly: task distribution is static (the depth-d
frontier, like the OpenMP baseline of Table 1, not a work-stealing
runtime), witness nodes travel back by pickling, and per-task process
overhead means small searches are faster sequentially.  The backend
exists to demonstrate genuine parallel wall-clock gains on CPython for
coarse-grained searches; the simulator remains the instrument for
studying coordination.
"""

from __future__ import annotations

import time
from multiprocessing import Pipe, Pool, Process, Value
from typing import Any, Callable, Optional

from repro.core.params import SkeletonParams
from repro.core.results import SearchMetrics, SearchResult, result_from_dict
from repro.core.searchtypes import Incumbent, SearchType
from repro.core.tasks import SEQ, SearchTask, SpawnedTask

__all__ = [
    "multiprocessing_depthbounded_search",
    "run_library_search",
    "run_job_in_subprocess",
]

# Per-worker globals, initialised once by _init_worker.
_worker_spec = None
_worker_stype = None
_worker_best = None


def _init_worker(spec_factory, factory_args, stype_factory, stype_args, best):
    """Pool initialiser: rebuild the spec/search type in this process."""
    global _worker_spec, _worker_stype, _worker_best
    _worker_spec = spec_factory(*factory_args)
    _worker_stype = stype_factory(*stype_args)
    _worker_best = best


def _run_task(payload: tuple[Any, int]) -> tuple[Any, int, int, int, int]:
    """Search one subtree; returns (knowledge, nodes, prunes, backtracks, goal)."""
    root, depth = payload
    spec, stype, best = _worker_spec, _worker_stype, _worker_best
    task = SearchTask(spec, stype, root, policy=SEQ, root_depth=depth)
    if stype.kind == "enumeration":
        knowledge = stype.initial_knowledge(spec)
    else:
        # Seed pruning from the shared best value; the witness node is
        # unknown here, but pruning only compares values.
        with best.get_lock():
            seen = best.value
        knowledge = Incumbent(max(seen, stype.initial_knowledge(spec).value), None)
    nodes = prunes = backtracks = 0
    goal = 0
    steps = 0
    while not task.finished:
        knowledge, out = task.step(knowledge)
        nodes += int(out.processed)
        prunes += int(out.pruned)
        backtracks += int(out.backtracked)
        if out.improved and stype.kind != "enumeration":
            with best.get_lock():
                if knowledge.value > best.value:
                    best.value = knowledge.value
        if out.goal:
            goal = 1
            break
        steps += 1
        if steps % 256 == 0 and stype.kind != "enumeration":
            # Periodically refresh the pruning bound from the shared best.
            with best.get_lock():
                seen = best.value
            if seen > knowledge.value:
                knowledge = Incumbent(seen, knowledge.node)
    return knowledge, nodes, prunes, backtracks, goal


def run_library_search(
    instance: str,
    skeleton: str = "sequential",
    search_type: Optional[str] = None,
    stype_kwargs: Optional[dict] = None,
    params: Optional[dict] = None,
) -> SearchResult:
    """Run one skeleton over a named library instance.

    Top-level and driven entirely by plain data, so it is picklable and
    can serve as a subprocess entry point: the service layer's process
    backend ships ``(instance, skeleton, ...)`` across and the worker
    rebuilds everything from the instance registry.

    ``search_type`` defaults to the instance's registered type (whose
    registered kwargs, e.g. a decision target, are merged under any
    caller-supplied ``stype_kwargs``).
    """
    from repro.core.searchtypes import make_search_type
    from repro.core.skeletons import make_skeleton
    from repro.instances.library import spec_for

    spec, default_type, default_kwargs = spec_for(instance)
    stype_name = search_type if search_type is not None else default_type
    kwargs = dict(default_kwargs) if stype_name == default_type else {}
    if stype_kwargs:
        kwargs.update(stype_kwargs)
    skel = make_skeleton(skeleton, stype_name)
    skel_params = SkeletonParams(**params) if params else SkeletonParams()
    stype = make_search_type(stype_name, **kwargs)
    return skel.search(spec, skel_params, stype=stype)


def _job_process_main(conn, payload: dict) -> None:
    """Subprocess entry: run the search, report through the pipe."""
    try:
        result = run_library_search(**payload)
        try:
            conn.send(("ok", result))
        except Exception:
            # Unpicklable witness: degrade to the JSON-safe dict form.
            conn.send(("ok_dict", result.to_dict()))
    except BaseException as exc:  # report crashes instead of dying silently
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


def run_job_in_subprocess(
    payload: dict,
    *,
    timeout: Optional[float] = None,
    cancel=None,
    poll_interval: float = 0.02,
) -> tuple[str, Any]:
    """Run :func:`run_library_search` in a dedicated, killable process.

    Unlike in-process execution this gives the caller real preemption:
    the child is terminated on timeout or when ``cancel`` (any object
    with ``is_set()``) fires.  Returns one of::

        ("ok", SearchResult)   completed
        ("timeout", None)      deadline hit, child terminated
        ("cancelled", None)    cancel event fired, child terminated
        ("crash", message)     child raised or died (exit code in message)
    """
    parent_conn, child_conn = Pipe(duplex=False)
    proc = Process(target=_job_process_main, args=(child_conn, payload), daemon=True)
    proc.start()
    child_conn.close()
    deadline = None if timeout is None else time.monotonic() + timeout
    status: str
    value: Any = None
    try:
        while True:
            if parent_conn.poll(poll_interval):
                try:
                    tag, body = parent_conn.recv()
                except EOFError:
                    status, value = "crash", "worker closed the pipe without a result"
                    break
                if tag == "ok":
                    status, value = "ok", body
                elif tag == "ok_dict":
                    status, value = "ok", result_from_dict(body)
                else:
                    status, value = "crash", body
                break
            if cancel is not None and cancel.is_set():
                proc.terminate()
                status = "cancelled"
                break
            if deadline is not None and time.monotonic() >= deadline:
                proc.terminate()
                status = "timeout"
                break
            # Re-check the pipe after seeing the child dead: the result
            # may have been sent in the gap before exit.
            if not proc.is_alive() and not parent_conn.poll():
                status, value = "crash", f"worker died with exit code {proc.exitcode}"
                break
    finally:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
        parent_conn.close()
    return status, value


def multiprocessing_depthbounded_search(
    spec_factory: Callable[..., Any],
    factory_args: tuple,
    stype_factory: Callable[..., SearchType],
    stype_args: tuple = (),
    *,
    n_processes: int = 2,
    d_cutoff: int = 2,
) -> SearchResult:
    """Depth-Bounded search over a process pool.

    ``spec_factory(*factory_args)`` must rebuild the SearchSpec (it is
    called once in the parent and once per worker); likewise
    ``stype_factory(*stype_args)`` for the search type.  Returns a
    :class:`SearchResult` whose ``value`` matches the sequential run;
    for optimisation/decision the witness is the best node seen by any
    single task (exact because tasks run their subtrees completely).
    """
    if n_processes < 1:
        raise ValueError("need at least one process")
    spec = spec_factory(*factory_args)
    stype = stype_factory(*stype_args)
    started = time.perf_counter()

    # Phase 1 (parent): expand the depth-d frontier sequentially.
    params = SkeletonParams(d_cutoff=d_cutoff)
    root_task = SearchTask(spec, stype, spec.root, policy="depth", params=params)
    knowledge = stype.initial_knowledge(spec)
    metrics = SearchMetrics()
    frontier: list[SpawnedTask] = []
    goal = False
    while not root_task.finished:
        knowledge, out = root_task.step(knowledge)
        metrics.nodes += int(out.processed)
        metrics.weighted_nodes += out.weight if out.processed else 0
        metrics.prunes += int(out.pruned)
        metrics.backtracks += int(out.backtracked)
        frontier.extend(out.spawned)
        metrics.spawns += len(out.spawned)
        if out.goal:
            goal = True
            break

    best_seed = 0 if stype.kind == "enumeration" else knowledge.value
    best = Value("q", best_seed)

    results: list[Any] = []
    if frontier and not goal:
        with Pool(
            processes=n_processes,
            initializer=_init_worker,
            initargs=(spec_factory, factory_args, stype_factory, stype_args, best),
        ) as pool:
            for task_knowledge, nodes, prunes, backtracks, task_goal in pool.map(
                _run_task, [(sp.root, sp.depth) for sp in frontier]
            ):
                results.append(task_knowledge)
                metrics.nodes += nodes
                metrics.prunes += prunes
                metrics.backtracks += backtracks
                goal = goal or bool(task_goal)

    for task_knowledge in results:
        if stype.kind == "enumeration":
            knowledge = stype.combine(knowledge, task_knowledge)
        elif task_knowledge.node is not None:
            knowledge = stype.combine(knowledge, task_knowledge)
    elapsed = time.perf_counter() - started

    if isinstance(knowledge, Incumbent):
        return SearchResult(
            kind=stype.kind,
            value=knowledge.value,
            node=knowledge.node,
            found=(goal or stype.is_goal(knowledge))
            if stype.kind == "decision"
            else None,
            metrics=metrics,
            wall_time=elapsed,
            workers=n_processes,
        )
    return SearchResult(
        kind=stype.kind,
        value=knowledge,
        metrics=metrics,
        wall_time=elapsed,
        workers=n_processes,
    )
