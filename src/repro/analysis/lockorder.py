"""Dynamic lock-acquisition-order tracer — a runtime deadlock detector.

Static analysis proves fields stay under their lock; it cannot prove
two locks are always taken in the same order.  This module can:
:func:`install` monkeypatches ``threading.Lock``/``threading.RLock``
so every lock created afterwards is wrapped in a :class:`TracedLock`
that records, per thread, the stack of currently-held locks and adds
``held -> acquiring`` edges to a global acquisition-order graph.  A
cycle in that graph (A taken under B somewhere, B taken under A
elsewhere) is a latent deadlock even if the schedules that trigger it
never ran; :meth:`LockOrderGraph.assert_acyclic` fails loudly with the
offending cycle.

Locks are keyed by *creation site* (``file.py:lineno``), so the many
per-instance locks minted by one constructor collapse into one graph
node — exactly the granularity deadlock reasoning wants.

Wiring: set ``REPRO_LOCK_TRACE=1`` and the test suite's conftest (and
``repro verify``) install the tracer and assert acyclicity at the end
of the run, which makes the conformance suite double as a deadlock
detector.  Overhead is one dict update per acquisition — fine for
tests, not meant for production serving.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "ENV_FLAG",
    "LockOrderCycleError",
    "LockOrderGraph",
    "TracedLock",
    "current_graph",
    "install",
    "installed",
    "maybe_install_from_env",
    "traced",
    "uninstall",
]

ENV_FLAG = "REPRO_LOCK_TRACE"

# Captured before any patching so the tracer's own bookkeeping never
# recurses through a TracedLock.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

_tls = threading.local()


class LockOrderCycleError(AssertionError):
    """Raised by :meth:`LockOrderGraph.assert_acyclic` on a cycle."""


class LockOrderGraph:
    """Directed acquisition-order graph over lock creation sites."""

    def __init__(self) -> None:
        self._mutex = _REAL_LOCK()
        self._edges: dict[str, set[str]] = {}
        self._acquisitions: dict[str, int] = {}

    def record(self, held: str, acquiring: str) -> None:
        """Add a ``held -> acquiring`` edge (self-edges are dropped)."""
        if held == acquiring:
            return
        with self._mutex:
            self._edges.setdefault(held, set()).add(acquiring)

    def count(self, site: str) -> None:
        """Bump the acquisition counter for one creation site."""
        with self._mutex:
            self._acquisitions[site] = self._acquisitions.get(site, 0) + 1

    def edges(self) -> dict[str, set[str]]:
        """A snapshot copy of the acquisition-order edge map."""
        with self._mutex:
            return {k: set(v) for k, v in self._edges.items()}

    def acquisitions(self, site_substring: str = "") -> int:
        """Total acquisitions across sites containing the substring."""
        with self._mutex:
            return sum(
                n
                for site, n in self._acquisitions.items()
                if site_substring in site
            )

    def find_cycle(self) -> Optional[list[str]]:
        """One cycle as a site path ``[a, b, ..., a]``, or None."""
        edges = self.edges()
        WHITE, GREY, BLACK = 0, 1, 2
        color = {node: WHITE for node in edges}
        for succs in edges.values():
            for node in succs:
                color.setdefault(node, WHITE)
        path: list[str] = []

        def visit(node: str) -> Optional[list[str]]:
            color[node] = GREY
            path.append(node)
            for succ in sorted(edges.get(node, ())):
                if color[succ] == GREY:
                    return path[path.index(succ):] + [succ]
                if color[succ] == WHITE:
                    cycle = visit(succ)
                    if cycle is not None:
                        return cycle
            path.pop()
            color[node] = BLACK
            return None

        for node in sorted(color):
            if color[node] == WHITE:
                cycle = visit(node)
                if cycle is not None:
                    return cycle
        return None

    def assert_acyclic(self) -> None:
        """Raise :class:`LockOrderCycleError` if any cycle exists."""
        cycle = self.find_cycle()
        if cycle is not None:
            pretty = " -> ".join(cycle)
            raise LockOrderCycleError(
                f"lock acquisition order cycle (latent deadlock): {pretty}"
            )


def _held_stack() -> list[str]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


class TracedLock:
    """Wraps a real lock; records order edges on every acquisition.

    Duck-types enough of the lock protocol for
    ``threading.Condition`` — including ``_is_owned`` and the
    ``_release_save``/``_acquire_restore`` pair used by
    ``Condition.wait`` with an RLock — and keeps the per-thread held
    stack consistent through those paths too.
    """

    def __init__(self, inner, site: str, graph: LockOrderGraph) -> None:
        self._inner = inner
        self._site = site
        self._graph = graph

    # -- core protocol ------------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Record order edges from every held lock, then acquire."""
        stack = _held_stack()
        if self._site not in stack:
            for held in stack:
                self._graph.record(held, self._site)
        got = self._inner.acquire(blocking, timeout)
        if got:
            stack.append(self._site)
            self._graph.count(self._site)
        return got

    def release(self) -> None:
        """Release the lock and pop it from the thread's held stack."""
        self._inner.release()
        stack = _held_stack()
        # Remove the most recent occurrence (RLocks may hold several).
        for idx in range(len(stack) - 1, -1, -1):
            if stack[idx] == self._site:
                del stack[idx]
                break

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        """Whether the wrapped lock is currently held (best effort)."""
        probe = getattr(self._inner, "locked", None)
        if probe is not None:
            return probe()
        if self._inner.acquire(False):  # pragma: no cover - old RLock
            self._inner.release()
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TracedLock {self._site} of {self._inner!r}>"

    def __getattr__(self, name: str):
        # Full duck-typing: anything not overridden (e.g. RLock's
        # _recursion_count, used by multiprocessing.resource_tracker)
        # proxies straight to the wrapped lock.
        return getattr(self._inner, name)

    # -- Condition interop --------------------------------------------------

    def _is_owned(self) -> bool:
        probe = getattr(self._inner, "_is_owned", None)
        if probe is not None:
            return probe()
        return self._site in _held_stack()

    def _release_save(self):
        stack = _held_stack()
        depth = stack.count(self._site)
        _remove_all(stack, self._site)
        saver = getattr(self._inner, "_release_save", None)
        if saver is not None:
            return (saver(), depth)
        self._inner.release()
        return (None, depth)

    def _acquire_restore(self, state) -> None:
        inner_state, depth = state
        restorer = getattr(self._inner, "_acquire_restore", None)
        if restorer is not None:
            restorer(inner_state)
        else:
            self._inner.acquire()
        _held_stack().extend([self._site] * max(1, depth))


def _remove_all(stack: list[str], site: str) -> None:
    while site in stack:
        stack.remove(site)


_state_mutex = _REAL_LOCK()
_graph: Optional[LockOrderGraph] = None
_installed = False


def _caller_site() -> str:
    """Creation site of the lock: first frame outside this module."""
    frame = sys._getframe(2)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back  # pragma: no cover - defensive
    if frame is None:  # pragma: no cover - defensive
        return "<unknown>"
    filename = frame.f_code.co_filename
    for marker in ("/src/", "/site-packages/", "/lib/"):
        if marker in filename:
            filename = filename.split(marker, 1)[1]
            break
    return f"{filename}:{frame.f_lineno}"


def _traced_lock_factory():
    graph = _graph
    if graph is None:  # pragma: no cover - raced uninstall
        return _REAL_LOCK()
    return TracedLock(_REAL_LOCK(), _caller_site(), graph)


def _traced_rlock_factory():
    graph = _graph
    if graph is None:  # pragma: no cover - raced uninstall
        return _REAL_RLOCK()
    return TracedLock(_REAL_RLOCK(), _caller_site(), graph)


def install() -> LockOrderGraph:
    """Start tracing every lock created from now on; idempotent."""
    global _graph, _installed
    with _state_mutex:
        if _installed:
            assert _graph is not None
            return _graph
        _graph = LockOrderGraph()
        threading.Lock = _traced_lock_factory  # type: ignore[assignment]
        threading.RLock = _traced_rlock_factory  # type: ignore[assignment]
        _installed = True
        return _graph


def uninstall() -> None:
    """Stop tracing; locks created while installed keep working."""
    global _graph, _installed
    with _state_mutex:
        if not _installed:
            return
        threading.Lock = _REAL_LOCK  # type: ignore[assignment]
        threading.RLock = _REAL_RLOCK  # type: ignore[assignment]
        _graph = None
        _installed = False


def installed() -> bool:
    """Whether the tracer currently owns ``threading.Lock``/``RLock``."""
    return _installed


def current_graph() -> Optional[LockOrderGraph]:
    """The active acquisition graph, or None when not tracing."""
    return _graph


def maybe_install_from_env() -> Optional[LockOrderGraph]:
    """Install iff ``REPRO_LOCK_TRACE`` is set to a truthy value."""
    if os.environ.get(ENV_FLAG, "").lower() in ("1", "true", "yes", "on"):
        return install()
    return None


@contextmanager
def traced() -> Iterator[LockOrderGraph]:
    """Scoped tracing for tests: a *fresh* graph, restored on exit.

    Always yields its own graph, even when a session-wide tracer (the
    ``REPRO_LOCK_TRACE`` conftest hook) is already installed: locks
    created inside the scope record here, so a test that deliberately
    builds a cycle cannot poison the session graph.  Locks created
    before the scope keep recording to their original graph.
    """
    global _graph, _installed
    with _state_mutex:
        prev_graph, prev_installed = _graph, _installed
        graph = LockOrderGraph()
        _graph = graph
        threading.Lock = _traced_lock_factory  # type: ignore[assignment]
        threading.RLock = _traced_rlock_factory  # type: ignore[assignment]
        _installed = True
    try:
        yield graph
    finally:
        with _state_mutex:
            _graph = prev_graph
            _installed = prev_installed
            if not prev_installed:
                threading.Lock = _REAL_LOCK  # type: ignore[assignment]
                threading.RLock = _REAL_RLOCK  # type: ignore[assignment]
