"""Fixture helpers for the static-analysis tests.

``project_from`` builds a throwaway :class:`repro.analysis.Project`
from a mapping of relative paths to source text, so each rule test can
state its fixture code inline next to the assertion.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.core import Project


@pytest.fixture
def project_from(tmp_path):
    def build(files: dict) -> Project:
        paths = []
        for rel, text in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
            paths.append(path)
        return Project.load(tmp_path, paths)

    return build
