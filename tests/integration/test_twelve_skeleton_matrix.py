"""The full skeleton matrix on library instances.

One test per (coordination, search type) cell — all 18 (the paper's 12
plus the two extension coordinations times three types) — each on a
real library instance, all agreeing with the sequential reference.
This is the executable version of the paper's Figure 3 product claim.
"""

import pytest

from repro.core.params import SkeletonParams
from repro.core.searchtypes import make_search_type
from repro.core.sequential import sequential_search
from repro.core.skeletons import COORDINATIONS, SEARCH_TYPES, make_skeleton
from repro.instances.library import spec_for

PARAMS = SkeletonParams(
    localities=2, workers_per_locality=4, d_cutoff=2, budget=25,
    spawn_probability=0.1, seed=2,
)

# One representative instance per search type.
INSTANCE_BY_TYPE = {
    "optimisation": "brock100-1",
    "decision": "kclique-uniform-100",
    "enumeration": "uts-bin-med",
}


def reference(search_type: str):
    """Sequential result for the type's representative instance."""
    name = INSTANCE_BY_TYPE[search_type]
    spec, stype_name, kwargs = spec_for(name)
    assert stype_name == search_type or (
        stype_name == "decision" and search_type == "decision"
    )
    stype = make_search_type(stype_name, **kwargs)
    return spec, stype, kwargs, sequential_search(spec, stype)


@pytest.mark.parametrize("coordination", sorted(COORDINATIONS))
@pytest.mark.parametrize("search_type", SEARCH_TYPES)
def test_skeleton_cell(coordination, search_type):
    if search_type == "decision":
        spec, stype, kwargs, seq = reference("decision")
    elif search_type == "optimisation":
        spec, stype, kwargs, seq = reference("optimisation")
    else:
        spec, stype, kwargs, seq = reference("enumeration")

    skeleton = make_skeleton(coordination, search_type)
    res = skeleton.search(spec, PARAMS, stype=stype)

    if search_type == "enumeration":
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes
    elif search_type == "optimisation":
        assert res.value == seq.value
    else:
        assert res.found == seq.found
    if coordination == "sequential":
        assert res.virtual_time is None
    else:
        assert res.virtual_time is not None
        assert res.workers == PARAMS.workers
