"""DIMACS ``.clq`` graph format (the clique benchmark interchange format).

The paper's MaxClique evaluation uses the DIMACS Second Implementation
Challenge instances [21].  Users who have those files can load them with
:func:`parse_dimacs` and run any skeleton on the real graphs; the
round-trip writer exists mainly so the synthetic library can be
exported for use with other solvers.

Format: ``c`` comment lines; one ``p edge <n> <m>`` problem line;
``e <u> <v>`` edge lines with 1-based vertex numbers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

from repro.apps.graph import Graph

__all__ = ["parse_dimacs", "parse_dimacs_text", "write_dimacs"]


def parse_dimacs_text(text: str) -> Graph:
    """Parse DIMACS ``.clq`` content into a :class:`Graph` (0-based)."""
    n = None
    edges: list[tuple[int, int]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "p":
            if n is not None:
                raise ValueError(f"line {lineno}: duplicate problem line")
            if len(parts) < 4 or parts[1] not in ("edge", "col"):
                raise ValueError(f"line {lineno}: malformed problem line {line!r}")
            n = int(parts[2])
        elif parts[0] == "e":
            if len(parts) != 3:
                raise ValueError(f"line {lineno}: malformed edge line {line!r}")
            u, v = int(parts[1]), int(parts[2])
            if u == v:
                continue  # some files carry self-loops; cliques ignore them
            edges.append((u - 1, v - 1))
        else:
            raise ValueError(f"line {lineno}: unknown record {parts[0]!r}")
    if n is None:
        raise ValueError("missing problem line")
    g = Graph(n)
    for u, v in edges:
        if not g.has_edge(u, v):  # duplicate edge lines are tolerated
            g.add_edge(u, v)
    return g


def parse_dimacs(path: Union[str, Path]) -> Graph:
    """Load a DIMACS ``.clq`` file."""
    return parse_dimacs_text(Path(path).read_text())


def write_dimacs(graph: Graph, path: Union[str, Path], *, comments: Iterable[str] = ()) -> None:
    """Write ``graph`` in DIMACS ``.clq`` format (1-based vertices)."""
    lines = [f"c {c}" for c in comments]
    lines.append(f"p edge {graph.n} {graph.edge_count()}")
    lines.extend(f"e {u + 1} {v + 1}" for u, v in graph.edges())
    Path(path).write_text("\n".join(lines) + "\n")
