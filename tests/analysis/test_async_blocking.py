"""async-blocking rule: event-loop bodies stay non-blocking."""

from __future__ import annotations

from repro.analysis.core import run_analysis
from repro.analysis.rules.async_blocking import AsyncBlockingRule


def check(project):
    return run_analysis(
        project, [AsyncBlockingRule()], check_suppression_hygiene=False
    )


class TestBlockingCalls:
    def test_time_sleep_flagged(self, project_from):
        src = (
            "import time\n\n\n"
            "async def handler():\n"
            "    time.sleep(1)\n"
        )
        (finding,) = check(project_from({"h.py": src})).findings
        assert "time.sleep" in finding.message
        assert finding.symbol == "handler"

    def test_asyncio_sleep_clean(self, project_from):
        src = (
            "import asyncio\n\n\n"
            "async def handler():\n"
            "    await asyncio.sleep(1)\n"
        )
        assert check(project_from({"h.py": src})).findings == []

    def test_socket_method_flagged(self, project_from):
        src = (
            "async def pump(sock):\n"
            "    data = sock.recv(4096)\n"
            "    return data\n"
        )
        (finding,) = check(project_from({"h.py": src})).findings
        assert ".recv()" in finding.message

    def test_run_in_executor_clean(self, project_from):
        src = (
            "import asyncio\n\n\n"
            "async def handler(loop, fn):\n"
            "    return await loop.run_in_executor(None, fn)\n"
        )
        assert check(project_from({"h.py": src})).findings == []

    def test_sync_def_not_scanned(self, project_from):
        src = "import time\n\n\ndef worker():\n    time.sleep(1)\n"
        assert check(project_from({"h.py": src})).findings == []

    def test_nested_sync_def_exempt(self, project_from):
        # A sync callback defined inside an async def runs elsewhere
        # (executor / call_soon target): not the loop's problem.
        src = (
            "import time\n\n\n"
            "async def handler(loop):\n"
            "    def blocking():\n"
            "        time.sleep(1)\n"
            "    await loop.run_in_executor(None, blocking)\n"
        )
        assert check(project_from({"h.py": src})).findings == []


class TestThreadQueues:
    def test_local_queue_get_flagged(self, project_from):
        src = (
            "import queue\n\n\n"
            "async def drain():\n"
            "    q = queue.Queue()\n"
            "    return q.get()\n"
        )
        (finding,) = check(project_from({"h.py": src})).findings
        assert "q.get()" in finding.message
        assert "asyncio.Queue" in finding.message

    def test_asyncio_queue_clean(self, project_from):
        src = (
            "import asyncio\n\n\n"
            "async def drain():\n"
            "    q = asyncio.Queue()\n"
            "    return await q.get()\n"
        )
        assert check(project_from({"h.py": src})).findings == []


class TestDroppedCoroutines:
    def test_bare_module_coroutine_call_flagged(self, project_from):
        src = (
            "async def step():\n"
            "    pass\n\n\n"
            "async def run():\n"
            "    step()\n"
        )
        (finding,) = check(project_from({"h.py": src})).findings
        assert "never awaited" in finding.message
        assert "'step'" in finding.message

    def test_bare_self_coroutine_call_flagged(self, project_from):
        src = (
            "class Handler:\n"
            "    async def _notify(self):\n"
            "        pass\n\n"
            "    async def run(self):\n"
            "        self._notify()\n"
        )
        (finding,) = check(project_from({"h.py": src})).findings
        assert "self._notify" in finding.message
        assert finding.symbol == "Handler.run"

    def test_awaited_coroutine_clean(self, project_from):
        src = (
            "async def step():\n"
            "    pass\n\n\n"
            "async def run():\n"
            "    await step()\n"
        )
        assert check(project_from({"h.py": src})).findings == []


class TestSuppressed:
    def test_waiver_with_reason(self, project_from):
        src = (
            "import time\n\n\n"
            "async def handler():\n"
            "    time.sleep(0)"
            "  # repro: allow[async-blocking] -- yields the GIL only\n"
        )
        report = check(project_from({"h.py": src}))
        assert report.findings == []
        assert report.suppressed == 1
