"""Tests for words and the prefix order (paper §3.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.semantics.words import (
    EPSILON,
    is_isogram,
    is_prefix,
    is_proper_prefix,
    parent,
    strict_extensions,
)

words = st.tuples(*([st.sampled_from("abc")] * 3)).map(tuple) | st.just(EPSILON)
any_word = st.lists(st.sampled_from("abcd"), max_size=6).map(tuple)


class TestPrefixOrder:
    def test_epsilon_prefix_of_everything(self):
        assert is_prefix(EPSILON, ("a", "b"))

    def test_reflexive(self):
        assert is_prefix(("a",), ("a",))

    def test_proper_is_irreflexive(self):
        assert not is_proper_prefix(("a",), ("a",))

    def test_simple_prefix(self):
        assert is_proper_prefix(("a",), ("a", "b"))

    def test_non_prefix(self):
        assert not is_prefix(("b",), ("a", "b"))

    def test_longer_never_prefix(self):
        assert not is_prefix(("a", "b"), ("a",))

    @given(any_word, any_word)
    def test_prefix_means_slice_equal(self, u, v):
        assert is_prefix(u, v) == (v[: len(u)] == u and len(u) <= len(v))

    @given(any_word, any_word, any_word)
    def test_transitive(self, u, v, w):
        if is_prefix(u, v) and is_prefix(v, w):
            assert is_prefix(u, w)

    @given(any_word, any_word)
    def test_antisymmetric(self, u, v):
        if is_prefix(u, v) and is_prefix(v, u):
            assert u == v


class TestParent:
    def test_parent_of_root_raises(self):
        with pytest.raises(ValueError):
            parent(EPSILON)

    @given(any_word.filter(lambda w: len(w) > 0))
    def test_parent_is_one_shorter_prefix(self, w):
        p = parent(w)
        assert len(p) == len(w) - 1
        assert is_proper_prefix(p, w)


class TestStrictExtensions:
    def test_basic(self):
        nodes = [EPSILON, ("a",), ("a", "b"), ("b",)]
        assert strict_extensions(("a",), nodes) == [("a", "b")]

    def test_root_extensions_are_all_nonroot(self):
        nodes = [EPSILON, ("a",), ("b",)]
        assert set(strict_extensions(EPSILON, nodes)) == {("a",), ("b",)}


class TestIsogram:
    def test_empty(self):
        assert is_isogram("")

    def test_distinct(self):
        assert is_isogram("abc")

    def test_repeat(self):
        assert not is_isogram("aba")

    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=10))
    def test_matches_set_cardinality(self, letters):
        assert is_isogram(letters) == (len(set(letters)) == len(letters))
