"""Int-backed bitsets.

The paper represents vertex sets as ``std::bitset<N>`` so that set
intersection and population count vectorise (Section 4.1, Listing 1; the
bitset encoding is credited with up to 20x speedups for MaxClique [36]).
Python's arbitrary-precision integers provide the same word-parallel
semantics: ``&``, ``|``, ``^`` and ``int.bit_count()`` all operate a
machine word at a time inside CPython, which makes a plain ``int`` the
idiomatic high-performance bitset in pure Python.

A bitset is therefore just an ``int`` where bit ``i`` set means "element
``i`` is a member".  This module collects the handful of helpers that the
applications need on top of the native operators.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = [
    "bitset_from_iterable",
    "singleton",
    "mask_below",
    "count_bits",
    "first_bit",
    "highest_bit",
    "without_bit",
    "bit_indices",
]


def bitset_from_iterable(elements: Iterable[int]) -> int:
    """Build a bitset containing every index in ``elements``.

    >>> bin(bitset_from_iterable([0, 2, 5]))
    '0b100101'
    """
    bits = 0
    for e in elements:
        if e < 0:
            raise ValueError(f"bitset elements must be non-negative, got {e}")
        bits |= 1 << e
    return bits


def singleton(index: int) -> int:
    """Bitset containing exactly ``index``."""
    if index < 0:
        raise ValueError(f"bitset elements must be non-negative, got {index}")
    return 1 << index


def mask_below(n: int) -> int:
    """Bitset containing all indices ``0 .. n-1``.

    >>> bin(mask_below(4))
    '0b1111'
    """
    if n < 0:
        raise ValueError(f"mask size must be non-negative, got {n}")
    return (1 << n) - 1


def count_bits(bits: int) -> int:
    """Population count (cardinality of the set)."""
    return bits.bit_count()


def first_bit(bits: int) -> int:
    """Index of the lowest set bit; -1 if the set is empty.

    Uses the two's-complement trick ``bits & -bits`` to isolate the lowest
    bit in O(words) rather than scanning bit by bit.
    """
    if bits == 0:
        return -1
    return (bits & -bits).bit_length() - 1


def highest_bit(bits: int) -> int:
    """Index of the highest set bit; -1 if the set is empty."""
    if bits == 0:
        return -1
    return bits.bit_length() - 1


def without_bit(bits: int, index: int) -> int:
    """Bitset with ``index`` removed (no-op if absent)."""
    return bits & ~(1 << index)


def bit_indices(bits: int) -> Iterator[int]:
    """Iterate set-bit indices in increasing order.

    Clears the lowest set bit each step, so iteration is O(popcount)
    lowest-bit isolations rather than O(universe) shifts.
    """
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low
