"""HTTP/1.1 parsing and serialisation primitives.

The parser is driven directly over in-memory asyncio streams — no
sockets — so every malformed-input branch is cheap to hit.
"""

import asyncio

import pytest

from repro.gateway.http import (
    HttpError,
    read_request,
    response_bytes,
    start_chunked,
    write_chunk,
)


def parse(raw: bytes, **kw):
    """Feed raw bytes to read_request via an in-memory StreamReader."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kw)

    return asyncio.run(run())


class TestReadRequest:
    def test_simple_get(self):
        req = parse(b"GET /jobs/j1 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/jobs/j1"
        assert req.headers["host"] == "x"
        assert req.body == b""

    def test_post_with_body(self):
        body = b'{"a": "b"}'
        req = parse(
            b"POST /jobs HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n".encode()
            + b"Content-Type: application/json\r\n\r\n"
            + body
        )
        assert req.method == "POST"
        assert req.json() == {"a": "b"}

    def test_query_string_is_parsed_off_the_path(self):
        req = parse(b"GET /jobs/j1/events?timeout=5 HTTP/1.1\r\n\r\n")
        assert req.path == "/jobs/j1/events"
        assert req.query == {"timeout": "5"}

    def test_eof_before_request_returns_none(self):
        assert parse(b"") is None

    def test_header_names_are_case_insensitive(self):
        req = parse(b"GET / HTTP/1.1\r\nX-Thing: 1\r\n\r\n")
        assert req.headers["x-thing"] == "1"

    def test_bad_request_line_is_400(self):
        with pytest.raises(HttpError) as err:
            parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_bad_content_length_is_400(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert err.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as err:
            parse(
                b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100,
                max_body=10,
            )
        assert err.value.status == 413

    def test_chunked_request_body_is_501(self):
        with pytest.raises(HttpError) as err:
            parse(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"0\r\n\r\n"
            )
        assert err.value.status == 501

    def test_truncated_body_returns_none(self):
        # Client hung up mid-body: not an error worth a response.
        assert parse(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nhalf") is None

    def test_json_on_invalid_body_is_400(self):
        req = parse(b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nnope")
        with pytest.raises(HttpError) as err:
            req.json()
        assert err.value.status == 400


class TestResponses:
    def test_response_bytes_shape(self):
        raw = response_bytes(404, {"error": "no such job"})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 404 Not Found\r\n")
        assert b"content-type: application/json" in head.lower()
        assert f"content-length: {len(body)}".encode() in head.lower()
        assert b"no such job" in body

    def test_extra_headers_are_emitted(self):
        raw = response_bytes(429, {"error": "full"}, extra_headers={"Retry-After": "2"})
        assert b"Retry-After: 2\r\n" in raw

    def test_chunked_stream_round_trip(self):
        class Sink:
            def __init__(self):
                self.data = b""

            def write(self, chunk):
                self.data += chunk

            async def drain(self):
                pass

        async def run():
            from repro.gateway.http import end_chunked

            sink = Sink()
            await start_chunked(sink)
            await write_chunk(sink, b'{"event": "queued"}\n')
            await write_chunk(sink, b"")  # must not terminate the stream
            await end_chunked(sink)
            return sink.data

        data = asyncio.run(run())
        assert b"Transfer-Encoding: chunked" in data
        # chunk framing: hex size, CRLF, payload, CRLF, then 0-terminator
        payload = b'{"event": "queued"}\n'
        assert f"{len(payload):x}".encode() + b"\r\n" + payload in data
        assert data.endswith(b"0\r\n\r\n")
