"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure from the paper's
evaluation (see DESIGN.md §4).  Results are printed in the paper's row
format and appended to ``benchmarks/results/`` so EXPERIMENTS.md can
cite them.

Environment knobs:

- ``REPRO_BENCH_SCALE`` (float, default 1.0): scales repetition counts.
- ``REPRO_BENCH_FULL=1``: run the full parameter sweeps (Table 2) and
  the full locality ladder (Figure 4) instead of the quick defaults.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.params import SkeletonParams
from repro.core.searchtypes import make_search_type
from repro.core.sequential import sequential_search
from repro.instances.library import spec_for
from repro.runtime.costmodel import CostModel
from repro.runtime.executor import SimulatedCluster, virtual_sequential_time
from repro.runtime.topology import Topology

RESULTS_DIR = Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

# One shared cost model for every experiment, so numbers are comparable
# across benches.
COST = CostModel()


def write_result(name: str, lines: list[str]) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print()
    print(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def stype_of(name: str):
    """Instantiate the search type an instance is registered with."""
    spec, stype_name, kwargs = spec_for(name)
    return spec, make_search_type(stype_name, **kwargs)


def sequential_baseline(name: str):
    """(virtual_time, SearchResult) of the Sequential skeleton run."""
    spec, stype = stype_of(name)
    return virtual_sequential_time(spec, stype, COST)


def run_parallel(
    name: str,
    skeleton: str,
    params: SkeletonParams,
    *,
    cost: CostModel | None = None,
    pool_discipline: str = "order",
):
    """One simulated-cluster run of a library instance."""
    from repro.core.skeletons import COORDINATIONS

    spec, stype = stype_of(name)
    cluster = SimulatedCluster(
        Topology(params.localities, params.workers_per_locality),
        cost if cost is not None else COST,
        pool_discipline=pool_discipline,
    )
    return cluster.run(spec, stype, COORDINATIONS[skeleton], params)


def fmt_row(cells: list, widths: list[int]) -> str:
    return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))


def suite_table1() -> list[str]:
    """The 18 MaxClique instances of Table 1."""
    from repro.instances.library import suite

    return suite("maxclique")


# Instances per application used for the Table 2 speedup matrix.  Chosen
# from the library for sequential sizes that give 120 workers real work
# (tens of thousands of nodes) while keeping the sweep minutes-scale.
TABLE2_SUITES: dict[str, list[str]] = {
    "maxclique": ["sanr100-1", "p_hat100-2", "p_hat100-1"],
    "tsp": ["tsp-rand-11", "tsp-rand-12"],
    "knapsack": ["knap-sim-26", "knap-sim-30"],
    "sip": ["sip-planted-20-70", "sip-planted-20-70b"],
    "ns": ["ns-genus-14", "ns-genus-15"],
    "uts": ["uts-geo-med", "uts-bin-med"],
}


def table2_suite(app: str) -> list[str]:
    return list(TABLE2_SUITES[app])
